// Foster B-tree (paper section 4.2; Graefe/Kimura/Kuno).
//
// Key properties the paper's detection story relies on, all implemented
// here:
//   * symmetric fence keys in every node, verified against the parent's
//     separator keys on EVERY pointer traversal ("continuous self-testing
//     of all invariants ... very early detection of page corruptions");
//   * local splits: a split creates a FOSTER child of the split node, so
//     only two latches are needed at a time; the permanent parent adopts
//     the foster child opportunistically later;
//   * exactly one incoming pointer per node at all times (supports simple
//     page migration, section 5.1.3);
//   * ghost records for logical deletion; structural changes run as
//     system transactions (section 5.1.5).
//
// Logging is physiological: redo physical-to-a-page (btree_log.h), undo
// logical via compensating operations that re-descend by key.

#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "btree/btree_log.h"
#include "btree/node_layout.h"
#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/sync.h"
#include "storage/allocation.h"
#include "storage/db_meta.h"
#include "txn/txn_manager.h"

namespace spf {

struct BTreeStats {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t splits = 0;
  uint64_t adoptions = 0;
  uint64_t root_growths = 0;
  uint64_t foster_traversals = 0;
  uint64_t ghost_reclaims = 0;
  uint64_t traversal_verifications = 0;
  uint64_t verification_failures = 0;
};

struct BTreeOptions {
  /// Verify fence-key invariants on every pointer traversal (section 4.2
  /// continuous verification). Disable only for the E7 ablation bench.
  bool verify_traversals = true;
  /// Opportunistically adopt foster children / grow the root during
  /// normal operations.
  bool opportunistic_adoption = true;
  /// Invoked after every kPageFormat record is logged. The db layer wires
  /// this to the page recovery index: a format record is the page's first
  /// backup source (paper section 5.2.1).
  std::function<void(PageId, Lsn)> format_listener;
};

/// Ordered map of byte-string keys to byte-string values, backed by a
/// Foster B-tree through the buffer pool. Thread-compatible per operation
/// (page latches serialize page access; key locks isolate user txns).
class BTree {
 public:
  BTree(BTreeOptions options, BufferPool* pool, LogManager* log,
        TxnManager* txns, PageAllocator* alloc, PageId meta_pid = 0);

  SPF_DISALLOW_COPY(BTree);

  /// Formats an empty tree: allocates and formats the root leaf and points
  /// the meta page at it. Runs inside its own system transaction.
  Status Create();

  // --- data operations (user transactions; strict 2PL on keys) --------------

  /// Inserts key -> value; FailedPrecondition if the key already exists.
  Status Insert(Transaction* txn, std::string_view key, std::string_view value);

  /// Replaces the value of an existing key; NotFound otherwise.
  Status Update(Transaction* txn, std::string_view key, std::string_view value);

  /// Logically deletes a key (ghost); NotFound if absent.
  Status Delete(Transaction* txn, std::string_view key);

  /// Point lookup. With a transaction, takes a shared lock (held to commit).
  StatusOr<std::string> Get(Transaction* txn, std::string_view key);

  /// Ordered scan over [start, end); invokes `fn(key, value)` for each
  /// live record; stops early if `fn` returns false. With a transaction,
  /// takes a shared lock on every delivered key (held to commit) — the
  /// same consistency story as Get; a lock wait that times out while the
  /// leaf latch is held resolves as Deadlock (the scan is the victim —
  /// retry it). With txn == nullptr, an unlocked read (read-committed at
  /// page granularity).
  Status Scan(Transaction* txn, std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>& fn);

  /// Unlocked-scan shorthand (txn == nullptr).
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>& fn) {
    return Scan(nullptr, start, end, fn);
  }

  /// Number of live (non-ghost) records, by full scan.
  StatusOr<uint64_t> Count();

  // --- recovery hooks --------------------------------------------------------

  /// Logical undo of one content record of `txn`, logging a CLR. Called by
  /// the rollback executor (recovery module) during aborts and restart undo.
  Status UndoRecord(Transaction* txn, const LogRecord& rec);

  // --- structure / verification ---------------------------------------------

  /// Comprehensive offline check of the whole tree (every node, every edge,
  /// B1–B5). Returns the first violation. `pages_checked` may be null.
  Status VerifyAll(uint64_t* pages_checked);

  StatusOr<PageId> root_pid();
  StatusOr<uint32_t> Height();

  BTreeStats stats() const;
  BufferPool* buffer_pool() { return pool_; }

 private:
  struct DescentResult {
    PageGuard leaf;
    /// Adoption opportunities observed on the way down.
    std::vector<std::pair<PageId, PageId>> adoption_ops;  // (parent, foster parent)
    bool root_needs_growth = false;
  };

  /// Root-to-leaf descent with latch coupling and continuous fence-key
  /// verification. The returned guard holds `mode` on the leaf that covers
  /// `key` (following foster edges as needed).
  StatusOr<DescentResult> DescendToLeaf(std::string_view key, LatchMode mode);

  /// Splits the node held by `guard` (leaf or branch) into itself plus a
  /// new foster child, as a system transaction. On return the guard still
  /// holds the (now smaller) node.
  Status SplitNode(PageGuard* guard);

  /// Grows the tree by one level when the root has a foster child.
  Status GrowRoot();

  /// Permanent parent `parent_pid` adopts the foster child of
  /// `foster_parent_pid`, if still applicable; splits the parent instead
  /// if it lacks space.
  Status TryAdopt(PageId parent_pid, PageId foster_parent_pid);

  /// Runs deferred adoptions / root growth collected during a descent.
  void RunMaintenance(const DescentResult& d);

  /// Frees ghost space in a leaf (system transaction), skipping keys that
  /// are locked by active transactions. Returns number reclaimed.
  size_t ReclaimGhostsInLeaf(PageGuard* guard);

  /// Locks `key` for `txn` (no-op for null/system txns); Deadlock on
  /// timeout.
  Status LockKey(Transaction* txn, std::string_view key, LockMode mode);

  Status ValidateKV(std::string_view key, std::string_view value) const;

  void BumpVerification(uint64_t n = 1);

  BTreeOptions options_;
  BufferPool* pool_;
  LogManager* log_;
  TxnManager* txns_;
  PageAllocator* alloc_;
  const PageId meta_pid_;

  mutable OrderedMutex stats_mu_{LockRank::kStats};
  BTreeStats stats_ SPF_GUARDED_BY(stats_mu_);
};

}  // namespace spf
