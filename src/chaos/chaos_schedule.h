// Chaos schedule: the seed-replayable scenario description the torture
// driver executes (tools/chaos, ROADMAP "scenario diversity").
//
// A schedule is (a) the workload shape — writer count, transactions per
// writer, operation mix — and (b) an ordered list of failure events, each
// triggered once the run's total acknowledged-commit count reaches its
// `at` threshold. Everything is derived from one PRNG seed by
// GenerateSchedule, and everything round-trips through a line-oriented
// text DSL (SerializeSchedule / ParseSchedule), so a run can be pinned,
// replayed, shrunk by hand, and checked into tests/chaos_seeds/ as a
// regression.
//
// Trace = serialized schedule + a `# result` footer recording the run's
// deterministic outcome (schedule digest, shadow digest, committed
// transactions). Replaying the schedule portion must reproduce the
// footer byte-for-byte — that equality is what chaos_test and
// tools/check_trace.py enforce.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace spf {
namespace chaos {

/// One failure (or maintenance) event class the driver can inject.
enum class EventKind : uint8_t {
  kCorrupt = 0,     ///< single-page silent corruption (checksum catches)
  kReadError,       ///< transient unrecoverable read (one read fails)
  kFailRange,       ///< multi-page hard failure (heals on repair rewrite)
  kWearOut,         ///< worn location: re-fails after every repair write
  kStaleCapture,    ///< snapshot a page image for a later stale revert
  kStaleRevert,     ///< revert to the captured image (Figure 12 class)
  kFullRestore,     ///< whole-device failure + rung-5 restore, live traffic
  kBackToBackRestore,  ///< two device failures + restores in a row
  kCrash,           ///< pause writers, SimulateCrash + Restart
  kCrashDuringRestore,  ///< restore fails mid-sweep, then crash, then restore
  kRelocate,        ///< retire a page location (paused; NotSupported is ok)
  kCheckpoint,      ///< fuzzy checkpoint under live traffic
  kBackup,          ///< full backup under live traffic
  kQuiesce,         ///< pause + run the full online-invariant suite
};

/// Stable DSL name of an event kind ("corrupt", "crash-during-restore"...).
const char* EventKindName(EventKind kind);
/// Inverse of EventKindName; false when `name` is not a known kind.
bool ParseEventKind(std::string_view name, EventKind* out);

/// One scheduled event. `key` is an ordinal resolved against a key space
/// at fire time (seed records for page-targeted faults, contended keys
/// for the stale pair), never a raw page id — page placement is an engine
/// detail the schedule must not depend on.
struct ChaosEvent {
  uint64_t at = 0;     ///< fires once total acked commits >= at
  EventKind kind = EventKind::kQuiesce;
  uint64_t key = 0;    ///< target key ordinal (kind-dependent space)
  uint64_t count = 1;  ///< range width in pages (fail-range)
  uint64_t writes = 0; ///< remaining write budget (wearout)
};

/// A full run description: workload shape + event list. Defaults give a
/// small mixed run; GenerateSchedule randomizes within bounded ranges.
struct ChaosSchedule {
  uint64_t seed = 0;             ///< drives workload PRNGs and generation
  uint32_t writers = 3;          ///< concurrent writer threads
  uint32_t txns_per_writer = 60; ///< acked transactions each must reach
  uint32_t ops_per_txn = 4;      ///< write ops per (non-contended) txn
  uint32_t keys_per_writer = 96; ///< size of each writer's private range
  uint32_t value_len = 24;       ///< random value length in bytes
  uint32_t seed_records = 1200;  ///< immutable preloaded records
  uint32_t contended_keys = 4;   ///< shared hot keys (serialized commits)
  uint32_t batch_pct = 25;       ///< % of txns applied as one WriteBatch
  uint32_t delete_pct = 15;      ///< % of ops that delete (when present)
  uint32_t contended_pct = 10;   ///< % of txns that hit a hot key instead
  uint32_t scan_every = 8;       ///< every Nth txn scans its range (0=off)
  bool scrubber = true;          ///< background scrubber on
  bool archiver = true;          ///< background log archiver on
  uint32_t restore_segment_pages = 32;  ///< rung-5 sweep segment size
  uint32_t drain_timeout_ms = 2000;     ///< restore-gate drain deadline
  std::vector<ChaosEvent> events;       ///< ascending by `at`

  uint64_t total_txns() const {
    return uint64_t(writers) * txns_per_writer;
  }
};

/// The `# result` footer of a trace (absent until a run completes).
struct TraceResult {
  bool present = false;
  uint64_t schedule_digest = 0;  ///< FNV-1a of the serialized schedule
  uint64_t shadow_digest = 0;    ///< FNV-1a of the final committed state
  uint64_t committed_txns = 0;   ///< total acked commits
  uint64_t events_fired = 0;     ///< events actually injected
};

/// Derives a bounded random schedule from `seed` (same seed, same
/// schedule, forever — this is the `--seed` entry point).
ChaosSchedule GenerateSchedule(uint64_t seed);

/// Renders the schedule in the DSL (no footer). Stable: serialize ∘ parse
/// is the identity on the serialized form.
std::string SerializeSchedule(const ChaosSchedule& schedule);

/// Serialized schedule + `# result` footer (a complete trace file).
std::string SerializeTrace(const ChaosSchedule& schedule,
                           const TraceResult& result);

/// Parses a schedule or trace. Unknown keys and malformed lines are
/// errors (a typo in a pinned scenario must not silently change it). A
/// `# result` footer, when present, lands in `*result` (may be null).
StatusOr<ChaosSchedule> ParseSchedule(const std::string& text,
                                      TraceResult* result = nullptr);

/// FNV-1a 64-bit, chainable (`h` is the running hash).
uint64_t DigestBytes(std::string_view bytes,
                     uint64_t h = 0xcbf29ce484222325ull);

}  // namespace chaos
}  // namespace spf
