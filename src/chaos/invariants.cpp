#include "chaos/invariants.h"

#include <algorithm>
#include <sstream>

namespace spf {
namespace chaos {

namespace {

void RequireMonotone(const char* name, uint64_t prev, uint64_t cur,
                     std::vector<std::string>* out) {
  if (cur < prev) {
    std::ostringstream msg;
    msg << "monotonicity: " << name << " regressed " << prev << " -> "
        << cur;
    out->push_back(msg.str());
  }
}

}  // namespace

std::vector<std::string> SnapshotMonotonicity::Check(const StatsSnapshot& s) {
  std::vector<std::string> v;
  if (s.version != StatsSnapshot::kVersion) {
    std::ostringstream msg;
    msg << "snapshot version: expected " << StatsSnapshot::kVersion
        << ", snapshot stamped " << s.version;
    v.push_back(msg.str());
  }
  if (have_prev_) {
    // The archive watermark survives crashes (recovered from the
    // directory), so it is checked across resets unconditionally.
    RequireMonotone("archive.archived_upto", prev_.archive.archived_upto,
                    s.archive.archived_upto, &v);
    if (!reset_pending_) {
      RequireMonotone("funnel.enqueued", prev_.funnel.enqueued,
                      s.funnel.enqueued, &v);
      RequireMonotone("funnel.batches", prev_.funnel.batches,
                      s.funnel.batches, &v);
      RequireMonotone("funnel.repaired_spr", prev_.funnel.repaired_spr,
                      s.funnel.repaired_spr, &v);
      RequireMonotone("funnel.repaired_partial",
                      prev_.funnel.repaired_partial,
                      s.funnel.repaired_partial, &v);
      RequireMonotone("funnel.repaired_full", prev_.funnel.repaired_full,
                      s.funnel.repaired_full, &v);
      RequireMonotone("funnel.gated_restores", prev_.funnel.gated_restores,
                      s.funnel.gated_restores, &v);
      RequireMonotone("locks.acquisitions", prev_.locks.acquisitions,
                      s.locks.acquisitions, &v);
      RequireMonotone("log.group_commit_batches",
                      prev_.log.group_commit_batches,
                      s.log.group_commit_batches, &v);
      RequireMonotone("log.group_commit_commits",
                      prev_.log.group_commit_commits,
                      s.log.group_commit_commits, &v);
      RequireMonotone("cross_checks", prev_.cross_checks, s.cross_checks, &v);
      RequireMonotone("cross_check_mismatches", prev_.cross_check_mismatches,
                      s.cross_check_mismatches, &v);
      RequireMonotone("archive.ticks", prev_.archive.ticks, s.archive.ticks,
                      &v);
      RequireMonotone("archive.runs_written", prev_.archive.runs_written,
                      s.archive.runs_written, &v);
      RequireMonotone("archive.records_archived",
                      prev_.archive.records_archived,
                      s.archive.records_archived, &v);
      // v3: the network-server block. Cumulative like everything else;
      // all-zero (snapshot not taken through a server) is trivially
      // monotone against all-zero.
      RequireMonotone("server.connections_accepted",
                      prev_.server.connections_accepted,
                      s.server.connections_accepted, &v);
      RequireMonotone("server.connections_closed",
                      prev_.server.connections_closed,
                      s.server.connections_closed, &v);
      RequireMonotone("server.frames_decoded", prev_.server.frames_decoded,
                      s.server.frames_decoded, &v);
      RequireMonotone("server.frames_rejected", prev_.server.frames_rejected,
                      s.server.frames_rejected, &v);
      RequireMonotone("server.ops_served", prev_.server.ops_served,
                      s.server.ops_served, &v);
      RequireMonotone("server.txns_committed", prev_.server.txns_committed,
                      s.server.txns_committed, &v);
      RequireMonotone("server.txns_failed", prev_.server.txns_failed,
                      s.server.txns_failed, &v);
      RequireMonotone("server.info_requests", prev_.server.info_requests,
                      s.server.info_requests, &v);
      RequireMonotone("server.gate_parked_commits",
                      prev_.server.gate_parked_commits,
                      s.server.gate_parked_commits, &v);
    }
  }
  prev_ = s;
  have_prev_ = true;
  reset_pending_ = false;
  return v;
}

std::vector<std::string> CheckFunnelConservation(const FunnelTotals& f) {
  std::vector<std::string> v;
  const uint64_t resolved = f.repaired_spr + f.repaired_partial +
                            f.repaired_full + f.skipped_dirty + f.failed;
  if (f.enqueued != resolved) {
    std::ostringstream msg;
    msg << "funnel conservation: enqueued=" << f.enqueued
        << " != spr=" << f.repaired_spr << " + partial=" << f.repaired_partial
        << " + full=" << f.repaired_full << " + dirty=" << f.skipped_dirty
        << " + failed=" << f.failed << " (= " << resolved << ")";
    v.push_back(msg.str());
  }
  return v;
}

std::vector<std::string> CheckArchiveTiling(
    const std::vector<ArchiveRunInfo>& runs, Lsn archived_upto) {
  std::vector<std::string> v;
  if (runs.empty()) return v;
  std::vector<ArchiveRunInfo> sorted = runs;
  std::sort(sorted.begin(), sorted.end(),
            [](const ArchiveRunInfo& a, const ArchiveRunInfo& b) {
              return a.log_start < b.log_start;
            });
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i].log_end != sorted[i + 1].log_start) {
      std::ostringstream msg;
      msg << "archive tiling: run seq " << sorted[i].seq << " ends at "
          << sorted[i].log_end << " but run seq " << sorted[i + 1].seq
          << " starts at " << sorted[i + 1].log_start;
      v.push_back(msg.str());
    }
  }
  if (sorted.back().log_end != archived_upto) {
    std::ostringstream msg;
    msg << "archive tiling: last run ends at " << sorted.back().log_end
        << " but archived_upto=" << archived_upto;
    v.push_back(msg.str());
  }
  return v;
}

std::vector<std::string> CheckServerConservation(const ServerStats& s) {
  std::vector<std::string> v;
  const uint64_t outcomes = s.txns_committed + s.txns_failed + s.info_requests;
  if (s.frames_decoded != outcomes) {
    std::ostringstream msg;
    msg << "server conservation: frames_decoded=" << s.frames_decoded
        << " != committed=" << s.txns_committed
        << " + failed=" << s.txns_failed << " + info=" << s.info_requests
        << " (= " << outcomes << ")";
    v.push_back(msg.str());
  }
  if (s.connections_closed > s.connections_accepted) {
    std::ostringstream msg;
    msg << "server conservation: connections_closed=" << s.connections_closed
        << " > connections_accepted=" << s.connections_accepted;
    v.push_back(msg.str());
  }
  const uint64_t txn_frames = s.txns_committed + s.txns_failed;
  if (s.gate_parked_commits > txn_frames) {
    std::ostringstream msg;
    msg << "server conservation: gate_parked_commits="
        << s.gate_parked_commits << " > transaction frames (" << txn_frames
        << ")";
    v.push_back(msg.str());
  }
  return v;
}

}  // namespace chaos
}  // namespace spf
