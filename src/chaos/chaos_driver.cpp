#include "chaos/chaos_driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/random.h"

namespace spf {
namespace chaos {

namespace {

constexpr uint32_t kMaxAttemptsPerTxn = 4000;

std::string Ordinal(uint64_t i, size_t width) {
  std::string s(width, '0');
  for (size_t p = width; p-- > 0 && i != 0; i /= 10) {
    s[p] = char('0' + i % 10);
  }
  return s;
}

}  // namespace

std::string SeedKey(uint64_t i) { return "seed" + Ordinal(i, 8); }

std::string WriterKey(uint32_t writer, uint64_t i) {
  return "w" + Ordinal(writer, 2) + "-" + Ordinal(i, 6);
}

std::string HotKey(uint64_t i) { return "hot" + Ordinal(i, 4); }

/// One deterministic transaction plan (retried unchanged until acked).
struct ChaosDriver::Plan {
  struct Op {
    bool del = false;
    std::string key;
    std::string value;
  };
  uint32_t writer = 0;
  uint32_t txn_index = 0;
  bool contended = false;  ///< single hot-key Put under hot_mu_
  bool use_batch = false;  ///< apply ops as one WriteBatch
  bool do_scan = false;    ///< verify the whole private range first
  std::string probe_key;   ///< read-check target (own range)
  std::vector<Op> ops;
};

ChaosDriver::ChaosDriver(ChaosSchedule schedule)
    : sched_(std::move(schedule)) {}

void ChaosDriver::AddViolation(std::string what) {
  MutexLock g(violations_mu_);
  if (verbose_) std::fprintf(stderr, "[chaos] VIOLATION: %s\n", what.c_str());
  if (violations_.size() < 200) violations_.push_back(std::move(what));
}

void ChaosDriver::Note(const std::string& what) {
  if (verbose_) std::fprintf(stderr, "[chaos] %s\n", what.c_str());
}

StatusOr<PageId> ChaosDriver::PageOfSeedKey(uint64_t ordinal) {
  return db_->LeafPageOf(SeedKey(ordinal % sched_.seed_records));
}

// --- writer side -------------------------------------------------------------

ChaosDriver::Plan ChaosDriver::MakePlan(Random* rng, uint32_t writer,
                                        uint32_t txn_index,
                                        const ShadowMap& shadow) const {
  Plan p;
  p.writer = writer;
  p.txn_index = txn_index;
  if (sched_.contended_keys > 0 &&
      rng->Uniform(100) < sched_.contended_pct) {
    p.contended = true;
    Plan::Op op;
    op.key = HotKey(rng->Uniform(sched_.contended_keys));
    op.value = rng->NextString(sched_.value_len);
    p.ops.push_back(std::move(op));
    return p;
  }
  p.use_batch = rng->Uniform(100) < sched_.batch_pct;
  p.do_scan = sched_.scan_every != 0 && txn_index != 0 &&
              txn_index % sched_.scan_every == 0;
  p.probe_key = WriterKey(writer, rng->Uniform(sched_.keys_per_writer));
  // Deletes target keys that will be present at execution time: presence
  // is tracked through the plan itself on top of the committed shadow,
  // so a plan never stages an op that must fail (kUser) — every plan is
  // committable, which is what makes retry-until-acked converge.
  std::map<std::string, bool> overlay;
  for (uint32_t i = 0; i < sched_.ops_per_txn; ++i) {
    Plan::Op op;
    op.key = WriterKey(writer, rng->Uniform(sched_.keys_per_writer));
    auto it = overlay.find(op.key);
    const bool present = it != overlay.end() ? it->second : shadow.Has(op.key);
    op.del = present && rng->Uniform(100) < sched_.delete_pct;
    if (!op.del) op.value = rng->NextString(sched_.value_len);
    overlay[op.key] = !op.del;
    p.ops.push_back(std::move(op));
  }
  return p;
}

bool ChaosDriver::AttemptPlan(const Plan& plan, ShadowMap* shadow) {
  Txn txn = db_->BeginTxn();
  if (!txn.active()) return false;

  if (!plan.contended) {
    // Online byte-identity read check: a locked read of an own-range key
    // must return exactly the committed shadow value (or NotFound).
    const std::string* want = shadow->Find(plan.probe_key);
    StatusOr<std::string> got = txn.Get(plan.probe_key);
    if (got.ok()) {
      if (want == nullptr) {
        AddViolation("read-check: deleted key resurrected: " +
                     plan.probe_key + " = '" + *got + "'");
      } else if (*got != *want) {
        AddViolation("read-check: wrong bytes for " + plan.probe_key +
                     ": got '" + *got + "' want '" + *want + "'");
      }
    } else if (got.status().IsNotFound()) {
      if (want != nullptr) {
        AddViolation("read-check: committed key lost: " + plan.probe_key);
      }
    } else {
      return false;  // transient (repair/restore/timeout): retry the plan
    }

    if (plan.do_scan) {
      // The private range scan must deliver exactly the shadow, in order.
      auto it = shadow->entries().begin();
      const auto end = shadow->entries().end();
      bool mismatch = false;
      Status s = txn.Scan(
          WriterKey(plan.writer, 0), "w" + Ordinal(plan.writer, 2) + ".",
          [&](std::string_view k, std::string_view v) {
            if (it == end || it->first != k || it->second != v) {
              mismatch = true;
              return false;
            }
            ++it;
            return true;
          });
      if (!s.ok()) return false;  // transient: retry
      if (mismatch || it != end) {
        AddViolation("scan divergence in w" + Ordinal(plan.writer, 2) +
                     " txn " + std::to_string(plan.txn_index));
      }
    }
  }

  if (plan.use_batch) {
    WriteBatch batch;
    for (const Plan::Op& op : plan.ops) {
      if (op.del) {
        batch.Delete(op.key);
      } else {
        batch.Put(op.key, op.value);
      }
    }
    if (!txn.Apply(std::move(batch)).ok()) return false;
  } else {
    for (const Plan::Op& op : plan.ops) {
      TxnError e = op.del ? txn.Delete(op.key) : txn.Put(op.key, op.value);
      if (!e.ok()) return false;
    }
  }

  if (!txn.Commit().ok()) return false;

  for (const Plan::Op& op : plan.ops) {
    if (op.del) {
      shadow->Delete(op.key);
    } else {
      shadow->Put(op.key, op.value);
    }
  }
  ProbeLockLeak(plan);
  return true;
}

void ChaosDriver::ProbeLockLeak(const Plan& plan) {
  // RAII accounting check after retirement: Commit released everything,
  // so no key this transaction touched may still be tracked. Key ranges
  // are private (and hot attempts hold hot_mu_), so a hit is a leak, not
  // a neighbor's lock.
  LockManager* lm = db_->txns()->lock_manager();
  for (const Plan::Op& op : plan.ops) {
    if (lm->IsLocked(op.key)) {
      AddViolation("lock leaked after retirement: " + op.key);
    }
  }
  if (!plan.probe_key.empty() && lm->IsLocked(plan.probe_key)) {
    AddViolation("lock leaked after retirement (read): " + plan.probe_key);
  }
}

void ChaosDriver::MaybePark(uint32_t writer) {
  (void)writer;
  UniqueLock g(mu_);
  while (pause_) {
    parked_++;
    cv_.notify_all();
    while (pause_) cv_.wait(g);
    parked_--;
  }
}

void ChaosDriver::WriterBody(uint32_t writer) {
  Random rng(sched_.seed * 0x9E3779B97F4A7C15ull +
             (writer + 1) * 0xD1B54A32D192ED03ull);
  ShadowMap& shadow = writer_shadows_[writer];
  for (uint32_t t = 0; t < sched_.txns_per_writer && !abort_.load(); ++t) {
    Plan plan = MakePlan(&rng, writer, t, shadow);
    bool acked = false;
    for (uint32_t attempt = 0; attempt < kMaxAttemptsPerTxn; ++attempt) {
      MaybePark(writer);
      if (abort_.load()) break;
      if (plan.contended) {
        MutexLock g(hot_mu_);
        acked = AttemptPlan(plan, &hot_shadow_);
      } else {
        acked = AttemptPlan(plan, &shadow);
      }
      if (acked) break;
      if (attempt % 8 == 7) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (!acked) {
      if (!abort_.load()) {
        AddViolation("writer " + std::to_string(writer) + " starved at txn " +
                     std::to_string(t));
      }
      break;
    }
    acked_total_.fetch_add(1);
  }
  MutexLock g(mu_);
  finished_++;
  cv_.notify_all();
}

// --- driver side -------------------------------------------------------------

void ChaosDriver::RequestPause() {
  UniqueLock g(mu_);
  pause_ = true;
  while (parked_ + finished_ < sched_.writers) cv_.wait(g);
}

void ChaosDriver::ReleasePause() {
  MutexLock g(mu_);
  pause_ = false;
  cv_.notify_all();
}

bool ChaosDriver::AllWritersDone() {
  MutexLock g(mu_);
  return finished_ >= sched_.writers;
}

void ChaosDriver::RestartDaemons() {
  if (sched_.scrubber) db_->scrubber()->Start();
  if (sched_.archiver) db_->archiver()->Start();
}

void ChaosDriver::CrashAndRestart() {
  // SimulateCrash must not race data operations: writers are parked (the
  // caller holds the pause barrier) and the background daemons are
  // stopped/drained here before the volatile state is torn down.
  if (db_->scrubber()->running()) db_->scrubber()->Stop();
  if (db_->archiver()->running()) db_->archiver()->Stop();
  if (db_->funnel() != nullptr) db_->funnel()->WaitIdle();
  monotonicity_.NoteReset();
  db_->SimulateCrash();
  auto rs = db_->Restart();
  if (!rs.ok()) {
    AddViolation("restart failed: " + rs.status().ToString());
    abort_.store(true);
    return;
  }
  RestartDaemons();
}

void ChaosDriver::NeutralizeWornPages() {
  for (PageId pid : worn_pages_) {
    // Retire the worn location (the paper's section 5.2.3 move) or, when
    // relocation is unsupported for this node, lift the wear budget and
    // repair whatever the last scrambled write left on the device.
    auto moved = db_->RelocatePage(pid);
    db_->data_device()->ClearFault(pid);  // drops the wear budget
    if (!moved.ok()) {
      auto r = db_->RecoverPages({pid});
      if (!r.ok()) {
        AddViolation("worn page " + std::to_string(pid) +
                     " unrecoverable: " + r.status().ToString());
      }
    }
  }
  worn_pages_.clear();
}

void ChaosDriver::ShadowSweepPaused() {
  auto check = [&](const std::string& key, const std::string* want,
                   const char* space) {
    StatusOr<std::string> got = db_->Get(key);
    if (got.ok()) {
      if (want == nullptr) {
        AddViolation(std::string("sweep(") + space +
                     "): deleted key resurrected: " + key);
      } else if (*got != *want) {
        AddViolation(std::string("sweep(") + space + "): wrong bytes for " +
                     key + ": got '" + *got + "' want '" + *want + "'");
      }
    } else if (got.status().IsNotFound()) {
      if (want != nullptr) {
        AddViolation(std::string("sweep(") + space +
                     "): committed key lost: " + key);
      }
    } else {
      AddViolation(std::string("sweep(") + space + "): read of " + key +
                   " failed: " + got.status().ToString());
    }
  };
  for (uint64_t i = 0; i < sched_.seed_records; ++i) {
    std::string key = SeedKey(i);
    check(key, seed_shadow_.Find(key), "seed");
  }
  for (uint32_t w = 0; w < sched_.writers; ++w) {
    for (uint64_t i = 0; i < sched_.keys_per_writer; ++i) {
      std::string key = WriterKey(w, i);
      check(key, writer_shadows_[w].Find(key), "writer");
    }
  }
  for (uint64_t i = 0; i < sched_.contended_keys; ++i) {
    std::string key = HotKey(i);
    check(key, hot_shadow_.Find(key), "hot");
  }
}

void ChaosDriver::QuiescePaused() {
  NeutralizeWornPages();
  Status flush = db_->FlushAll();
  if (!flush.ok()) {
    AddViolation("quiesce flush failed: " + flush.ToString());
  }
  if (db_->funnel() != nullptr) db_->funnel()->WaitIdle();
  auto scrub = db_->Scrub();
  if (!scrub.ok()) {
    AddViolation("quiesce scrub failed: " + scrub.status().ToString());
  }
  if (db_->funnel() != nullptr) db_->funnel()->WaitIdle();

  StatsSnapshot s = db_->Stats();
  for (auto& v : monotonicity_.Check(s)) AddViolation(std::move(v));
  if (db_->funnel() != nullptr) {
    for (auto& v : CheckFunnelConservation(s.funnel)) AddViolation(std::move(v));
  }
  // Trivially clean on a db-only snapshot (all-zero server block), but a
  // future serving-layer chaos scenario inherits the law for free.
  for (auto& v : CheckServerConservation(s.server)) AddViolation(std::move(v));
  if (s.locks.keys_tracked != 0) {
    AddViolation("lock leak at quiesce: keys_tracked=" +
                 std::to_string(s.locks.keys_tracked));
  }
  if (sched_.archiver) {
    for (auto& v : CheckArchiveTiling(db_->archiver()->runs(),
                                      db_->archiver()->archived_upto())) {
      AddViolation(std::move(v));
    }
  }
  ShadowSweepPaused();
  uint64_t pages_checked = 0;
  Status off = db_->CheckOffline(&pages_checked);
  if (!off.ok()) {
    AddViolation("CheckOffline failed at quiesce: " + off.ToString());
  }
}

void ChaosDriver::FireEvent(const ChaosEvent& e) {
  Note(std::string("event at=") + std::to_string(e.at) + " " +
       EventKindName(e.kind));
  switch (e.kind) {
    case EventKind::kCorrupt:
    case EventKind::kReadError:
    case EventKind::kWearOut: {
      auto pid = PageOfSeedKey(e.key);
      if (!pid.ok()) return;  // page unresolvable mid-fault; skip
      if (e.kind == EventKind::kWearOut) {
        db_->data_device()->SetWearOutLimit(*pid, uint32_t(e.writes));
        worn_pages_.push_back(*pid);
      }
      if (e.kind == EventKind::kReadError) {
        db_->data_device()->InjectReadError(*pid, /*permanent=*/false);
      } else if (!db_->pool()->IsDirty(*pid) && db_->pool()->DiscardPage(*pid)) {
        db_->data_device()->InjectSilentCorruption(*pid);
      }
      // Trigger detection through the read path; the funnel (or the
      // inline repairer) must hand back the exact seed bytes.
      std::string key = SeedKey(e.key % sched_.seed_records);
      const std::string* want = seed_shadow_.Find(key);
      StatusOr<std::string> got = db_->Get(key);
      for (int i = 0; i < 2 && !got.ok(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        got = db_->Get(key);
      }
      if (!got.ok()) {
        AddViolation("seed key unreadable after injected fault: " + key +
                     ": " + got.status().ToString());
      } else if (want == nullptr || *got != *want) {
        AddViolation("seed key diverged after repair: " + key);
      }
      return;
    }
    case EventKind::kFailRange: {
      auto pid = PageOfSeedKey(e.key);
      if (!pid.ok()) return;
      uint64_t count =
          std::min<uint64_t>(std::max<uint64_t>(e.count, 1),
                             db_->options().num_pages - *pid);
      db_->data_device()->FailPageRange(*pid, count);
      (void)db_->Get(SeedKey(e.key % sched_.seed_records));
      return;  // the rest of the range heals via scrubber/funnel/quiesce
    }
    case EventKind::kStaleCapture: {
      auto pid = db_->LeafPageOf(HotKey(e.key % sched_.contended_keys));
      if (!pid.ok()) return;
      db_->data_device()->CapturePageVersion(*pid);
      stale_pages_[e.key] = *pid;
      return;
    }
    case EventKind::kStaleRevert: {
      auto it = stale_pages_.find(e.key);
      if (it == stale_pages_.end()) return;  // capture never resolved
      PageId pid = it->second;
      if (!db_->pool()->IsDirty(pid)) db_->pool()->DiscardPage(pid);
      db_->data_device()->InjectStaleVersion(pid);
      // Unlocked read to trigger the PageLSN cross-check; the value is
      // NOT verified here (hot keys change under live commits) — the
      // quiesce sweep owns that comparison.
      (void)db_->Get(HotKey(e.key % sched_.contended_keys));
      return;
    }
    case EventKind::kFullRestore:
    case EventKind::kBackToBackRestore: {
      int rounds = e.kind == EventKind::kBackToBackRestore ? 2 : 1;
      for (int i = 0; i < rounds; ++i) {
        db_->data_device()->FailDevice();
        auto r = db_->RecoverMedia();
        if (!r.ok()) {
          AddViolation("live full restore failed: " + r.status().ToString());
          abort_.store(true);
          return;
        }
      }
      return;
    }
    case EventKind::kCrash: {
      RequestPause();
      CrashAndRestart();
      if (!abort_.load()) ShadowSweepPaused();
      ReleasePause();
      return;
    }
    case EventKind::kCrashDuringRestore: {
      RequestPause();
      // The whole sequence runs against parked writers: the restore that
      // fails mid-sweep, the crash on top of the half-restored device,
      // and the second restore that must finish the job.
      if (db_->scrubber()->running()) db_->scrubber()->Stop();
      if (db_->archiver()->running()) db_->archiver()->Stop();
      if (db_->funnel() != nullptr) db_->funnel()->WaitIdle();
      db_->data_device()->FailDevice();
      const uint64_t total = db_->options().num_pages;
      uint64_t seg = sched_.restore_segment_pages != 0
                         ? sched_.restore_segment_pages
                         : total;
      // Segment 0's bytes are genuinely lost (the failed restore must
      // really rebuild them from backup + log)...
      std::string zeros(db_->options().page_size, '\0');
      for (PageId p = 0; p < std::min<uint64_t>(seg, total); ++p) {
        db_->data_device()->RawWrite(p, zeros.data());
      }
      // ...and the backup image of a mid-device segment is unreadable,
      // so the sweep fails after segment 0 but before the end.
      uint64_t mid = std::min(total - 1, (total / 2 / seg) * seg);
      uint64_t cnt = std::min<uint64_t>(seg, total - mid);
      db_->backup_device()->FailPageRange(mid, cnt);
      auto r1 = db_->RecoverMedia();
      if (r1.ok()) {
        AddViolation(
            "crash-during-restore: poisoned restore unexpectedly succeeded");
      }
      for (PageId p = mid; p < mid + cnt; ++p) {
        db_->backup_device()->ClearFault(p);
      }
      CrashAndRestart();
      if (!abort_.load()) {
        auto r2 = db_->RecoverMedia();
        if (!r2.ok()) {
          AddViolation("restore after crash-during-restore failed: " +
                       r2.status().ToString());
          abort_.store(true);
        } else {
          ShadowSweepPaused();
        }
      }
      ReleasePause();
      return;
    }
    case EventKind::kRelocate: {
      RequestPause();
      auto pid = PageOfSeedKey(e.key);
      if (pid.ok()) {
        auto moved = db_->RelocatePage(*pid);
        // NotSupported (root / foster parent) is a legitimate outcome.
        if (!moved.ok() && !moved.status().IsNotSupported()) {
          AddViolation("relocate failed: " + moved.status().ToString());
        }
      }
      ReleasePause();
      return;
    }
    case EventKind::kCheckpoint: {
      auto c = db_->Checkpoint();
      if (!c.ok()) {
        AddViolation("checkpoint failed: " + c.status().ToString());
      }
      return;
    }
    case EventKind::kBackup: {
      // A worn location re-scrambles every repair write, so no backup can
      // succeed while one remains in service — retire worn pages first
      // (the operator move the paper prescribes), then demand success.
      NeutralizeWornPages();
      auto b = db_->TakeFullBackup();
      if (!b.ok()) {
        AddViolation("backup failed: " + b.status().ToString());
      }
      return;
    }
    case EventKind::kQuiesce: {
      RequestPause();
      QuiescePaused();
      ReleasePause();
      return;
    }
  }
}

ChaosReport ChaosDriver::Run(bool verbose) {
  verbose_ = verbose;
  ChaosReport report;
  const std::string serialized = SerializeSchedule(sched_);
  report.schedule_digest = DigestBytes(serialized);
  Note("schedule digest " + std::to_string(report.schedule_digest));

  DatabaseOptions o;
  o.num_pages = 4096;
  o.buffer_frames = 512;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.restore_segment_pages = sched_.restore_segment_pages;
  o.restore_drain_timeout =
      std::chrono::milliseconds(sched_.drain_timeout_ms);
  o.backup_policy.updates_threshold = 0;  // the full backup is the source
  o.lock_timeout = std::chrono::milliseconds(100);
  o.scrub_wall_interval = std::chrono::milliseconds(5);
  o.archive_interval = std::chrono::milliseconds(2);
  auto created = Database::Create(o);
  if (!created.ok()) {
    AddViolation("database create failed: " + created.status().ToString());
    report.violations = std::move(violations_);
    return report;
  }
  db_ = std::move(created).value();

  // Preload: immutable seed records (fault-injection anchors) and the
  // initial hot keys, then the full backup every restore replays from.
  bool loaded = true;
  for (uint64_t i = 0; i < sched_.seed_records && loaded; i += 64) {
    Txn txn = db_->BeginTxn();
    for (uint64_t j = i; j < std::min<uint64_t>(i + 64, sched_.seed_records);
         ++j) {
      std::string key = SeedKey(j);
      std::string value = "seedval:" + Ordinal(j, 8);
      if (!txn.Put(key, value).ok()) {
        loaded = false;
        break;
      }
      seed_shadow_.Put(key, value);
    }
    if (loaded) loaded = txn.Commit().ok();
  }
  if (loaded) {
    Txn txn = db_->BeginTxn();
    for (uint64_t i = 0; i < sched_.contended_keys; ++i) {
      std::string key = HotKey(i);
      std::string value = "hot-init:" + Ordinal(i, 4);
      if (!txn.Put(key, value).ok()) {
        loaded = false;
        break;
      }
      hot_shadow_.Put(key, value);
    }
    if (loaded) loaded = txn.Commit().ok();
  }
  if (!loaded || !db_->FlushAll().ok() || !db_->TakeFullBackup().ok()) {
    AddViolation("seed load / initial backup failed");
    report.violations = std::move(violations_);
    return report;
  }
  monotonicity_.Check(db_->Stats());
  RestartDaemons();

  writer_shadows_.resize(sched_.writers);
  std::vector<std::thread> writers;
  writers.reserve(sched_.writers);
  for (uint32_t w = 0; w < sched_.writers; ++w) {
    writers.emplace_back([this, w] { WriterBody(w); });
  }

  for (const ChaosEvent& e : sched_.events) {
    while (acked_total_.load() < e.at && !AllWritersDone() &&
           !abort_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (abort_.load()) break;
    FireEvent(e);
    events_fired_++;
  }
  for (auto& th : writers) th.join();

  RequestPause();
  if (!abort_.load()) QuiescePaused();
  ReleasePause();

  if (db_->scrubber()->running()) db_->scrubber()->Stop();
  if (db_->archiver()->running()) db_->archiver()->Stop();

  uint64_t h = DigestBytes("spf-chaos-shadow-v1");
  h = seed_shadow_.Digest(h);
  for (uint32_t w = 0; w < sched_.writers; ++w) {
    h = writer_shadows_[w].Digest(h);
  }
  report.committed_txns = acked_total_.load();
  h = DigestBytes("committed=" + std::to_string(report.committed_txns), h);
  report.shadow_digest = h;
  report.events_fired = events_fired_;
  report.final_stats = db_->Stats();
  {
    MutexLock g(violations_mu_);
    report.violations = violations_;
  }
  return report;
}

}  // namespace chaos
}  // namespace spf
