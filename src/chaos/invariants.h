// Online invariant checks the chaos driver runs against StatsSnapshot and
// the archiver directory. Each check returns human-readable violation
// strings (empty = clean); the driver aggregates them into its report.
//
// What each check pins (see docs/ARCHITECTURE.md "Chaos harness"):
//   * funnel conservation — every page the RecoveryCoordinator accepted
//     ends in exactly one outcome bucket once the funnel is idle;
//   * snapshot monotonicity — cumulative counters never regress within a
//     volatile-state epoch, and the archive watermark never regresses at
//     all (it is recovered from the on-volume directory across crashes);
//   * archive tiling — the directory's runs tile one contiguous log
//     interval ending exactly at archived_upto (the same invariant
//     tools/check_archive.py re-verifies offline from raw bytes).

#pragma once

#include <string>
#include <vector>

#include "db/stats_snapshot.h"
#include "log/log_archive.h"

namespace spf {
namespace chaos {

/// Stateful monotonicity tracker. NoteReset() after every SimulateCrash
/// (volatile components are rebuilt, counters legally restart from zero);
/// the archive watermark is exempt and must survive the reset. Also pins
/// the snapshot's version stamp to StatsSnapshot::kVersion on every call
/// (a component filling an outdated struct would silently misreport). As
/// of v3 the network-server block (`server`) is covered: its cumulative
/// counters must never regress within an epoch.
class SnapshotMonotonicity {
 public:
  /// Compares against the previous snapshot and adopts `s` as the new
  /// baseline. First call only records.
  std::vector<std::string> Check(const StatsSnapshot& s);

  /// Forgives the next regression of the volatile counters (crash).
  void NoteReset() { reset_pending_ = true; }

 private:
  StatsSnapshot prev_;
  bool have_prev_ = false;
  bool reset_pending_ = false;
};

/// Funnel conservation: enqueued == repaired_spr + repaired_partial +
/// repaired_full + skipped_dirty + failed. Valid only while the funnel is
/// idle (drained, no batch in flight) — call after WaitIdle.
std::vector<std::string> CheckFunnelConservation(const FunnelTotals& f);

/// Archive tiling: runs sorted by log_start must be gap- and
/// overlap-free and end exactly at `archived_upto`.
std::vector<std::string> CheckArchiveTiling(
    const std::vector<ArchiveRunInfo>& runs, Lsn archived_upto);

/// Server conservation (StatsSnapshot v3): with no frame in flight,
/// every decoded frame landed in exactly one outcome bucket
/// (frames_decoded == txns_committed + txns_failed + info_requests),
/// connections never close more than they accept, and gate-parked
/// commits never exceed the transaction frames that could have parked.
std::vector<std::string> CheckServerConservation(const ServerStats& s);

}  // namespace chaos
}  // namespace spf
