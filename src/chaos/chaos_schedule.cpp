#include "chaos/chaos_schedule.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"

namespace spf {
namespace chaos {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kCorrupt, "corrupt"},
    {EventKind::kReadError, "read-error"},
    {EventKind::kFailRange, "fail-range"},
    {EventKind::kWearOut, "wearout"},
    {EventKind::kStaleCapture, "stale-capture"},
    {EventKind::kStaleRevert, "stale-revert"},
    {EventKind::kFullRestore, "full-restore"},
    {EventKind::kBackToBackRestore, "back-to-back-restore"},
    {EventKind::kCrash, "crash"},
    {EventKind::kCrashDuringRestore, "crash-during-restore"},
    {EventKind::kRelocate, "relocate"},
    {EventKind::kCheckpoint, "checkpoint"},
    {EventKind::kBackup, "backup"},
    {EventKind::kQuiesce, "quiesce"},
};

}  // namespace

const char* EventKindName(EventKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

bool ParseEventKind(std::string_view name, EventKind* out) {
  for (const auto& kn : kKindNames) {
    if (name == kn.name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

uint64_t DigestBytes(std::string_view bytes, uint64_t h) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

ChaosSchedule GenerateSchedule(uint64_t seed) {
  Random rng(seed ^ 0x5ca1ab1e5eedull);
  ChaosSchedule s;
  s.seed = seed;
  s.writers = 2 + uint32_t(rng.Uniform(3));          // 2..4
  s.txns_per_writer = 40 + uint32_t(rng.Uniform(41));  // 40..80
  s.ops_per_txn = 2 + uint32_t(rng.Uniform(5));        // 2..6
  s.keys_per_writer = 64 + uint32_t(rng.Uniform(65));  // 64..128
  s.value_len = 16 + uint32_t(rng.Uniform(33));        // 16..48
  s.seed_records = 1000 + uint32_t(rng.Uniform(501));  // 1000..1500
  s.contended_keys = 2 + uint32_t(rng.Uniform(5));     // 2..6
  s.batch_pct = uint32_t(rng.Uniform(41));             // 0..40
  s.delete_pct = uint32_t(rng.Uniform(26));            // 0..25
  s.contended_pct = uint32_t(rng.Uniform(16));         // 0..15
  s.scan_every = rng.Bernoulli(0.8) ? 4 + uint32_t(rng.Uniform(9)) : 0;
  s.scrubber = rng.Bernoulli(0.75);
  s.archiver = rng.Bernoulli(0.75);
  s.restore_segment_pages = uint32_t(1) << rng.UniformRange(3, 8);  // 8..128
  s.drain_timeout_ms = 1000 + uint32_t(rng.Uniform(2001));

  // Events: ascending triggers across the middle of the run, weighted
  // toward the cheap page-level classes with the expensive whole-device
  // ones rarer. Stale injection always generates as a capture/revert
  // pair, and every schedule ends with an explicit mid-run quiesce (the
  // driver runs a final one unconditionally).
  const uint64_t total = s.total_txns();
  const size_t n_events = 3 + rng.Uniform(5);  // 3..7
  uint64_t at = 2 + rng.Uniform(5);
  bool restore_used = false;
  for (size_t i = 0; i < n_events; ++i) {
    at += 1 + rng.Uniform(std::max<uint64_t>(1, (total * 9) / 10 / n_events));
    ChaosEvent e;
    e.at = at;
    const uint64_t roll = rng.Uniform(100);
    if (roll < 22) {
      e.kind = EventKind::kCorrupt;
      e.key = rng.Uniform(s.seed_records);
    } else if (roll < 34) {
      e.kind = EventKind::kReadError;
      e.key = rng.Uniform(s.seed_records);
    } else if (roll < 48) {
      e.kind = EventKind::kFailRange;
      e.key = rng.Uniform(s.seed_records);
      e.count = 2 + rng.Uniform(7);
    } else if (roll < 58) {
      e.kind = EventKind::kWearOut;
      e.key = rng.Uniform(s.seed_records);
      e.writes = rng.Uniform(3);
    } else if (roll < 66) {
      e.kind = EventKind::kStaleCapture;
      e.key = rng.Uniform(s.contended_keys);
      s.events.push_back(e);
      e.kind = EventKind::kStaleRevert;
      at += 2 + rng.Uniform(8);
      e.at = at;
    } else if (roll < 72) {
      e.kind = EventKind::kCheckpoint;
    } else if (roll < 77) {
      e.kind = EventKind::kBackup;
    } else if (roll < 82) {
      e.kind = EventKind::kRelocate;
      e.key = rng.Uniform(s.seed_records);
    } else if (roll < 88 && !restore_used) {
      e.kind = EventKind::kFullRestore;
      restore_used = true;
    } else if (roll < 92 && !restore_used) {
      e.kind = EventKind::kBackToBackRestore;
      restore_used = true;
    } else if (roll < 96) {
      e.kind = EventKind::kCrash;
    } else {
      e.kind = EventKind::kQuiesce;
    }
    s.events.push_back(e);
  }
  return s;
}

std::string SerializeSchedule(const ChaosSchedule& s) {
  std::ostringstream out;
  out << "# spf chaos trace v1\n";
  out << "seed " << s.seed << "\n";
  out << "writers " << s.writers << "\n";
  out << "txns-per-writer " << s.txns_per_writer << "\n";
  out << "ops-per-txn " << s.ops_per_txn << "\n";
  out << "keys-per-writer " << s.keys_per_writer << "\n";
  out << "value-len " << s.value_len << "\n";
  out << "seed-records " << s.seed_records << "\n";
  out << "contended-keys " << s.contended_keys << "\n";
  out << "batch-pct " << s.batch_pct << "\n";
  out << "delete-pct " << s.delete_pct << "\n";
  out << "contended-pct " << s.contended_pct << "\n";
  out << "scan-every " << s.scan_every << "\n";
  out << "scrubber " << (s.scrubber ? 1 : 0) << "\n";
  out << "archiver " << (s.archiver ? 1 : 0) << "\n";
  out << "restore-segment-pages " << s.restore_segment_pages << "\n";
  out << "drain-timeout-ms " << s.drain_timeout_ms << "\n";
  for (const ChaosEvent& e : s.events) {
    out << "event at=" << e.at << " kind=" << EventKindName(e.kind);
    out << " key=" << e.key;
    if (e.kind == EventKind::kFailRange) out << " count=" << e.count;
    if (e.kind == EventKind::kWearOut) out << " writes=" << e.writes;
    out << "\n";
  }
  return out.str();
}

std::string SerializeTrace(const ChaosSchedule& s, const TraceResult& r) {
  std::ostringstream out;
  out << SerializeSchedule(s);
  out << "# result schedule-digest=" << r.schedule_digest
      << " shadow-digest=" << r.shadow_digest
      << " committed-txns=" << r.committed_txns
      << " events-fired=" << r.events_fired << "\n";
  return out.str();
}

namespace {

bool ParseU64(std::string_view v, uint64_t* out) {
  if (v.empty()) return false;
  uint64_t x = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    x = x * 10 + uint64_t(c - '0');
  }
  *out = x;
  return true;
}

/// Splits "key=value" around the first '='.
bool SplitKv(std::string_view token, std::string_view* k,
             std::string_view* v) {
  size_t eq = token.find('=');
  if (eq == std::string_view::npos) return false;
  *k = token.substr(0, eq);
  *v = token.substr(eq + 1);
  return true;
}

Status ParseEventLine(const std::string& line, ChaosEvent* e) {
  std::istringstream in(line);
  std::string word;
  in >> word;  // "event"
  bool have_kind = false;
  while (in >> word) {
    std::string_view k, v;
    if (!SplitKv(word, &k, &v)) {
      return Status::InvalidArgument("malformed event token: " + word);
    }
    if (k == "kind") {
      if (!ParseEventKind(v, &e->kind)) {
        return Status::InvalidArgument("unknown event kind: " +
                                       std::string(v));
      }
      have_kind = true;
      continue;
    }
    uint64_t x = 0;
    if (!ParseU64(v, &x)) {
      return Status::InvalidArgument("bad event number: " + word);
    }
    if (k == "at") {
      e->at = x;
    } else if (k == "key") {
      e->key = x;
    } else if (k == "count") {
      e->count = x;
    } else if (k == "writes") {
      e->writes = x;
    } else {
      return Status::InvalidArgument("unknown event field: " +
                                     std::string(k));
    }
  }
  if (!have_kind) return Status::InvalidArgument("event without kind");
  return Status::OK();
}

Status ParseResultLine(const std::string& line, TraceResult* r) {
  std::istringstream in(line);
  std::string word;
  in >> word >> word;  // "#", "result"
  while (in >> word) {
    std::string_view k, v;
    uint64_t x = 0;
    if (!SplitKv(word, &k, &v) || !ParseU64(v, &x)) {
      return Status::InvalidArgument("malformed result token: " + word);
    }
    if (k == "schedule-digest") {
      r->schedule_digest = x;
    } else if (k == "shadow-digest") {
      r->shadow_digest = x;
    } else if (k == "committed-txns") {
      r->committed_txns = x;
    } else if (k == "events-fired") {
      r->events_fired = x;
    } else {
      return Status::InvalidArgument("unknown result field: " +
                                     std::string(k));
    }
  }
  r->present = true;
  return Status::OK();
}

}  // namespace

StatusOr<ChaosSchedule> ParseSchedule(const std::string& text,
                                      TraceResult* result) {
  ChaosSchedule s;
  TraceResult footer;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line.rfind("# result", 0) == 0) {
      SPF_RETURN_IF_ERROR(ParseResultLine(line, &footer));
      continue;
    }
    if (line[0] == '#') continue;  // comment
    if (line.rfind("event ", 0) == 0) {
      ChaosEvent e;
      SPF_RETURN_IF_ERROR(ParseEventLine(line, &e));
      s.events.push_back(e);
      continue;
    }
    std::istringstream kv(line);
    std::string key;
    uint64_t value = 0;
    std::string value_word;
    kv >> key >> value_word;
    if (key.empty() || !ParseU64(value_word, &value)) {
      return Status::InvalidArgument("malformed schedule line: " + line);
    }
    if (key == "seed") {
      s.seed = value;
    } else if (key == "writers") {
      s.writers = uint32_t(value);
    } else if (key == "txns-per-writer") {
      s.txns_per_writer = uint32_t(value);
    } else if (key == "ops-per-txn") {
      s.ops_per_txn = uint32_t(value);
    } else if (key == "keys-per-writer") {
      s.keys_per_writer = uint32_t(value);
    } else if (key == "value-len") {
      s.value_len = uint32_t(value);
    } else if (key == "seed-records") {
      s.seed_records = uint32_t(value);
    } else if (key == "contended-keys") {
      s.contended_keys = uint32_t(value);
    } else if (key == "batch-pct") {
      s.batch_pct = uint32_t(value);
    } else if (key == "delete-pct") {
      s.delete_pct = uint32_t(value);
    } else if (key == "contended-pct") {
      s.contended_pct = uint32_t(value);
    } else if (key == "scan-every") {
      s.scan_every = uint32_t(value);
    } else if (key == "scrubber") {
      s.scrubber = value != 0;
    } else if (key == "archiver") {
      s.archiver = value != 0;
    } else if (key == "restore-segment-pages") {
      s.restore_segment_pages = uint32_t(value);
    } else if (key == "drain-timeout-ms") {
      s.drain_timeout_ms = uint32_t(value);
    } else {
      return Status::InvalidArgument("unknown schedule key: " + key);
    }
  }
  if (s.writers == 0 || s.txns_per_writer == 0 || s.keys_per_writer == 0 ||
      s.ops_per_txn == 0) {
    return Status::InvalidArgument("schedule needs nonzero workload shape");
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  if (result != nullptr) *result = footer;
  return s;
}

}  // namespace chaos
}  // namespace spf
