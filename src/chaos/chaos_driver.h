// ChaosDriver: executes one ChaosSchedule against a live Database —
// concurrent writers running a mixed workload (point ops, scans,
// WriteBatches, a serialized hot-key lane) with retry-until-acked
// transaction plans, while the schedule's failure events are injected
// between and under them — and checks the online invariants the whole
// way (byte-identity vs the shadow model, per-retirement lock probes,
// funnel conservation, snapshot monotonicity, archive tiling, offline
// page verification at quiesce).
//
// Determinism contract (what makes --replay byte-exact):
//   * each writer owns a private key range; its transaction plans are a
//     pure function of (schedule seed, writer id, txn index) plus its own
//     committed history, and a plan retries unchanged until its commit is
//     acknowledged — so each writer's final committed range state is a
//     pure function of the schedule;
//   * hot (contended) keys are serialized by a commit-order mutex so the
//     shadow tracks the engine exactly, but their final values depend on
//     thread scheduling, so they are verified for byte-identity yet
//     EXCLUDED from the replay digest;
//   * crashes and other writer-unsafe events run at a pause barrier
//     (every writer parked between transactions), so no commit
//     acknowledgment is ever ambiguous.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaos/chaos_schedule.h"
#include "chaos/invariants.h"
#include "chaos/shadow_model.h"
#include "common/sync.h"
#include "db/database.h"

namespace spf {
namespace chaos {

/// Outcome of one chaos run.
struct ChaosReport {
  /// Invariant violations and harness-fatal errors; empty = clean run.
  std::vector<std::string> violations;
  uint64_t committed_txns = 0;  ///< acked commits (== schedule total)
  uint64_t events_fired = 0;    ///< schedule events actually injected
  /// FNV-1a over the final committed state (seed records + every
  /// writer's range; hot keys excluded — see determinism contract).
  uint64_t shadow_digest = 0;
  uint64_t schedule_digest = 0;  ///< FNV-1a of the serialized schedule
  StatsSnapshot final_stats;     ///< for trace annotation / debugging

  bool ok() const { return violations.empty(); }
  TraceResult ToTraceResult() const {
    TraceResult r;
    r.present = true;
    r.schedule_digest = schedule_digest;
    r.shadow_digest = shadow_digest;
    r.committed_txns = committed_txns;
    r.events_fired = events_fired;
    return r;
  }
};

/// Key-space naming shared by the driver, tests, and trace tooling.
std::string SeedKey(uint64_t i);                  ///< immutable preload
std::string WriterKey(uint32_t writer, uint64_t i);  ///< private ranges
std::string HotKey(uint64_t i);                   ///< contended lane

/// One schedule, one run. Not reusable.
class ChaosDriver {
 public:
  explicit ChaosDriver(ChaosSchedule schedule);

  /// Runs the whole schedule to completion (including the final quiesce)
  /// and returns the report. `verbose` narrates events to stderr.
  ChaosReport Run(bool verbose = false);

 private:
  struct Plan;

  void WriterBody(uint32_t writer);
  Plan MakePlan(Random* rng, uint32_t writer, uint32_t txn_index,
                const ShadowMap& shadow) const;
  /// One transaction attempt; true when the commit was acknowledged.
  bool AttemptPlan(const Plan& plan, ShadowMap* shadow);
  void ProbeLockLeak(const Plan& plan);

  void FireEvent(const ChaosEvent& e);
  void RequestPause();
  void ReleasePause();
  void MaybePark(uint32_t writer);
  bool AllWritersDone();

  void CrashAndRestart();
  void RestartDaemons();
  /// Full invariant suite; requires the pause barrier to be held.
  void QuiescePaused();
  /// Byte-identity sweep of every key space; requires the pause barrier.
  void ShadowSweepPaused();
  void NeutralizeWornPages();

  StatusOr<PageId> PageOfSeedKey(uint64_t ordinal);
  void AddViolation(std::string what);
  void Note(const std::string& what);

  const ChaosSchedule sched_;
  bool verbose_ = false;
  std::unique_ptr<Database> db_;

  // Writer control: pause barrier + progress counters.
  OrderedMutex mu_{LockRank::kHarness};
  CondVar cv_;
  bool pause_ SPF_GUARDED_BY(mu_) = false;
  std::atomic<bool> abort_{false};  ///< harness-fatal: writers bail out
  uint32_t parked_ SPF_GUARDED_BY(mu_) = 0;
  uint32_t finished_ SPF_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> acked_total_{0};

  // Shadows. Writer w owns writer_shadows_[w] exclusively while running;
  // the driver reads them only at pause barriers. Hot keys are guarded by
  // hot_mu_ held across each contended attempt AND its shadow update.
  std::vector<ShadowMap> writer_shadows_;
  OrderedMutex hot_mu_{LockRank::kHarness};
  ShadowMap hot_shadow_ SPF_GUARDED_BY(hot_mu_);
  ShadowMap seed_shadow_;

  OrderedMutex violations_mu_{LockRank::kStats};
  std::vector<std::string> violations_ SPF_GUARDED_BY(violations_mu_);

  SnapshotMonotonicity monotonicity_;
  std::vector<PageId> worn_pages_;
  std::unordered_map<uint64_t, PageId> stale_pages_;  ///< capture key→page
  uint64_t events_fired_ = 0;
};

}  // namespace chaos
}  // namespace spf
