// Shadow model: the chaos driver's in-memory ground truth.
//
// A ShadowMap holds the committed key→value state one owner (a writer's
// private range, the shared hot-key set, the immutable seed records) is
// REQUIRED to observe from the engine: only acknowledged commits are
// applied, so any divergence — wrong bytes, a lost key, a resurrected
// delete — is an engine bug, never a harness artifact. Maps are owned
// single-threaded (per-writer) or under an explicit external mutex (hot
// keys); the driver merges them for digesting only at pause barriers,
// whose mutex provides the happens-before edge.

#pragma once

#include <map>
#include <string>
#include <string_view>

#include "chaos/chaos_schedule.h"

namespace spf {
namespace chaos {

/// Committed key→value state for one key-space owner.
class ShadowMap {
 public:
  void Put(std::string_view key, std::string_view value) {
    live_[std::string(key)] = std::string(value);
  }
  void Delete(std::string_view key) { live_.erase(std::string(key)); }

  /// Current committed value, or null when absent (deleted / never put).
  const std::string* Find(std::string_view key) const {
    auto it = live_.find(std::string(key));
    return it == live_.end() ? nullptr : &it->second;
  }

  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  size_t size() const { return live_.size(); }

  const std::map<std::string, std::string>& entries() const { return live_; }

  /// Chains every "key=value\n" pair (sorted — std::map order) into `h`.
  uint64_t Digest(uint64_t h) const {
    for (const auto& [k, v] : live_) {
      h = DigestBytes(k, h);
      h = DigestBytes("=", h);
      h = DigestBytes(v, h);
      h = DigestBytes("\n", h);
    }
    return h;
  }

 private:
  std::map<std::string, std::string> live_;
};

}  // namespace chaos
}  // namespace spf
