#include "backup/backup_manager.h"

#include <cstring>

#include "common/coding.h"

namespace spf {

BackupManager::BackupManager(SimDevice* data_device, SimDevice* backup_device,
                             LogManager* log)
    : data_device_(data_device),
      backup_device_(backup_device),
      log_(log),
      page_size_(data_device->page_size()),
      data_pages_(data_device->num_pages()),
      next_fresh_slot_(data_device->num_pages()) {
  SPF_CHECK_EQ(backup_device->page_size(), page_size_);
  SPF_CHECK_GT(backup_device->num_pages(), data_pages_)
      << "backup device needs room for a full backup plus page copies";
}

void BackupManager::SetFullBackupVerification(
    std::function<bool(PageId)> verifiable,
    std::function<Status(PageId)> repair) {
  verifiable_ = std::move(verifiable);
  repair_ = std::move(repair);
}

StatusOr<FullBackupInfo> BackupManager::TakeFullBackup(Lsn backup_lsn) {
  // Backup LSN first: the log from here forward, plus this image, can
  // reconstruct any later state.
  log_->ForceAll();
  if (backup_lsn == kInvalidLsn) backup_lsn = log_->durable_lsn();
  std::vector<char> buf(page_size_);
  for (PageId p = 0; p < data_pages_; ++p) {
    // Never copy a bad image over the only backup of this page: a read
    // failure or a failed in-page verification routes the page through
    // repair (which may itself consult the page's old backup image —
    // still intact, it has not been overwritten yet) and re-reads. Only
    // when the page stays bad does the backup abort, with every image
    // written so far verified-valid.
    const bool check = verifiable_ != nullptr && verifiable_(p);
    Status page_status;
    for (int attempt = 0; ; ++attempt) {
      page_status = data_device_->ReadPage(p, buf.data());
      if (page_status.ok() && check) {
        page_status = PageView(buf.data(), page_size_).Verify(p);
      }
      if (page_status.ok() || repair_ == nullptr || attempt >= 2) break;
      SPF_RETURN_IF_ERROR(repair_(p));
    }
    SPF_RETURN_IF_ERROR(page_status);
    SPF_RETURN_IF_ERROR(backup_device_->WritePage(p, buf.data()));
  }
  MutexLock g(mu_);
  FullBackupInfo info{next_backup_id_++, backup_lsn, data_pages_};
  full_backup_ = info;
  stats_.full_backups++;
  return info;
}

std::optional<FullBackupInfo> BackupManager::latest_full_backup() const {
  MutexLock g(mu_);
  return full_backup_;
}

Status BackupManager::ReadFromFullBackup(BackupId backup, PageId id,
                                         char* out) {
  {
    MutexLock g(mu_);
    if (!full_backup_ || full_backup_->id != backup) {
      return Status::NotFound("full backup not available");
    }
    if (id >= data_pages_) return Status::InvalidArgument("page out of range");
    stats_.backup_reads++;
  }
  return backup_device_->ReadPage(id, out);
}

StatusOr<uint64_t> BackupManager::RestoreFullBackup(BackupId backup,
                                                    SimDevice* target) {
  {
    MutexLock g(mu_);
    if (!full_backup_ || full_backup_->id != backup) {
      return Status::NotFound("full backup not available");
    }
  }
  std::vector<char> buf(page_size_);
  for (PageId p = 0; p < data_pages_; ++p) {
    SPF_RETURN_IF_ERROR(backup_device_->ReadPage(p, buf.data()));
    SPF_RETURN_IF_ERROR(target->WritePage(p, buf.data()));
  }
  return data_pages_;
}

StatusOr<uint64_t> BackupManager::ReadPagesFromFullBackup(
    BackupId backup, const std::vector<PageId>& pages, char* const* frames) {
  {
    MutexLock g(mu_);
    if (!full_backup_ || full_backup_->id != backup) {
      return Status::NotFound("full backup not available");
    }
    for (size_t i = 0; i < pages.size(); ++i) {
      if (pages[i] >= data_pages_) {
        return Status::InvalidArgument("page out of range");
      }
      if (i > 0 && pages[i] <= pages[i - 1]) {
        return Status::InvalidArgument("pages must be ascending");
      }
    }
    stats_.backup_reads += pages.size();
  }
  uint64_t runs = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (i == 0 || pages[i] != pages[i - 1] + 1) runs++;
    SPF_RETURN_IF_ERROR(backup_device_->ReadPage(pages[i], frames[i]));
  }
  return runs;
}

StatusOr<PageId> BackupManager::TakePageBackup(PageId id,
                                               const char* page_data) {
  PageId new_slot;
  PageId old_slot = kInvalidPageId;
  {
    MutexLock g(mu_);
    if (!free_slots_.empty()) {
      new_slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if (next_fresh_slot_ >= backup_device_->num_pages()) {
        return Status::IOError("backup device page-copy pool exhausted");
      }
      new_slot = next_fresh_slot_++;
    }
    auto it = current_slot_.find(id);
    if (it != current_slot_.end()) old_slot = it->second;
  }

  // Write the NEW copy first; only then free the old one. For an instant
  // both exist (section 5.2.2: overwriting the only backup risks losing
  // both backup and recovery on a failed write).
  Status s = backup_device_->WritePage(new_slot, page_data);
  if (!s.ok()) {
    MutexLock g(mu_);
    free_slots_.push_back(new_slot);
    return s;
  }
  MutexLock g(mu_);
  current_slot_[id] = new_slot;
  if (old_slot != kInvalidPageId) {
    free_slots_.push_back(old_slot);
    stats_.page_backups_freed++;
  }
  stats_.page_backups_taken++;
  return new_slot;
}

PageId BackupManager::CurrentPageBackupSlot(PageId id) const {
  MutexLock g(mu_);
  auto it = current_slot_.find(id);
  return it == current_slot_.end() ? kInvalidPageId : it->second;
}

Status BackupManager::ReadPageBackup(PageId loc, char* out) {
  {
    MutexLock g(mu_);
    stats_.backup_reads++;
  }
  return backup_device_->ReadPage(loc, out);
}

StatusOr<Lsn> BackupManager::LogPageImage(PageId id, const char* page_data) {
  LogRecord rec;
  rec.type = LogRecordType::kFullPageImage;
  // Informational page id; deliberately NOT on the per-page chain (taking
  // an image does not modify the page), so plain Append, not
  // AppendPageRecord.
  rec.page_id = id;
  rec.body.assign(page_data, page_size_);
  Lsn lsn = log_->Append(&rec);
  MutexLock g(mu_);
  stats_.in_log_images++;
  return lsn;
}

Status BackupManager::ReadLogImage(Lsn lsn, PageId expected_id, char* out) {
  SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(lsn));
  if (rec.type != LogRecordType::kFullPageImage) {
    return Status::Corruption("LSN does not hold a page image");
  }
  if (rec.page_id != expected_id) {
    return Status::Corruption("page image is for a different page");
  }
  if (rec.body.size() != page_size_) {
    return Status::Corruption("page image size mismatch");
  }
  std::memcpy(out, rec.body.data(), page_size_);
  {
    MutexLock g(mu_);
    stats_.backup_reads++;
  }
  return Status::OK();
}

BackupStats BackupManager::stats() const {
  MutexLock g(mu_);
  return stats_;
}

}  // namespace spf
