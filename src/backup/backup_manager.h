// Sources of backup pages (paper section 5.2.1).
//
// Single-page recovery needs an earlier copy of the failed page. The paper
// enumerates four sources, all implemented here:
//   1. a full database backup (also the basis for media recovery);
//   2. per-page backup copies taken during normal processing, e.g. after
//      every N updates of a page (BackupPolicy);
//   3. the page image retained by a page migration / in-log full page
//      images (kFullPageImage records);
//   4. the PageFormat log record of a freshly allocated page.
// Sources 3 and 4 live in the recovery log itself; this module manages the
// dedicated backup device used by sources 1 and 2, including the paper's
// "never overwrite the old backup page before the new one exists" rule.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/sync.h"
#include "log/log_manager.h"
#include "storage/page.h"
#include "storage/sim_device.h"

namespace spf {

/// When normal processing takes a per-page backup copy (section 6: "fast
/// single-page recovery can be ensured with a page backup after a number
/// of updates or after a period since the last page backup").
struct BackupPolicy {
  /// Take a copy when a page is written with at least this many updates
  /// since its last backup. 0 disables per-page copies.
  uint32_t updates_threshold = 100;
  /// Log the image into the recovery log instead of the backup device
  /// (source 3 above).
  bool use_in_log_images = false;
};

/// Identifies a full database backup.
using BackupId = uint64_t;

struct FullBackupInfo {
  BackupId id;
  Lsn backup_lsn;        ///< log position when the backup was taken
  uint64_t num_pages;
};

struct BackupStats {
  uint64_t full_backups = 0;
  uint64_t page_backups_taken = 0;
  uint64_t page_backups_freed = 0;
  uint64_t in_log_images = 0;
  uint64_t backup_reads = 0;
};

/// Manages the backup device: full backups (sequential image of the data
/// device) and an allocate-then-free store of individual page copies.
/// Thread-safe.
class BackupManager {
 public:
  /// `backup_device` must have capacity for one full backup plus the
  /// per-page copy working set; by convention the first `data_pages` ids
  /// hold the full backup and the remainder is the page-copy pool.
  BackupManager(SimDevice* data_device, SimDevice* backup_device,
                LogManager* log);

  SPF_DISALLOW_COPY(BackupManager);

  // --- full backups ----------------------------------------------------------

  /// Takes a full backup: sequentially copies every data page to the
  /// backup device. The caller must have flushed the buffer pool (sharp
  /// backup). Returns the backup descriptor.
  ///
  /// The old backup is overwritten in place, one page at a time, so the
  /// "never overwrite the old backup page before the new one exists" rule
  /// (section 5.2.2) holds per page only if every image written is valid:
  /// with verification hooks installed (SetFullBackupVerification), a page
  /// that reads bad is repaired and re-read — never copied as garbage —
  /// and a backup that fails partway leaves a backup device holding only
  /// valid images (a newer-valid prefix over the old backup), which the
  /// unchanged catalog entry still describes correctly for conditional
  /// replay. Without hooks, images are copied blind (legacy behavior).
  ///
  /// `backup_lsn` is the position restores will replay from; every update
  /// at or below it must already be reflected on the data device when the
  /// copy starts. A caller that flushes a buffer pool must capture this
  /// BEFORE the flush and pass it in (Database::TakeFullBackup) — with
  /// kInvalidLsn the manager captures the durable LSN itself, which is
  /// only correct when no write-back cache sits above the data device.
  StatusOr<FullBackupInfo> TakeFullBackup(Lsn backup_lsn = kInvalidLsn);

  /// Installs full-backup page verification. `verifiable` selects pages
  /// that carry the standard page format (allocated, not PRI, not
  /// retired); `repair` is called when such a page fails to read or fails
  /// in-page verification and must leave the device copy readable (route
  /// it through the recovery ladder). Either may be null to disable.
  void SetFullBackupVerification(std::function<bool(PageId)> verifiable,
                                 std::function<Status(PageId)> repair);

  /// Latest full backup, if any.
  std::optional<FullBackupInfo> latest_full_backup() const;

  /// Reads page `id`'s image from full backup `backup` into `out`.
  Status ReadFromFullBackup(BackupId backup, PageId id, char* out);

  /// Sequentially restores every page of full backup `backup` onto
  /// `target` (media recovery, section 5.1.3). Returns pages restored.
  StatusOr<uint64_t> RestoreFullBackup(BackupId backup, SimDevice* target);

  /// Reads each page of `pages` (ascending, deduplicated) from full backup
  /// `backup` into `frames[i]`. Runs of consecutive ids cost sequential
  /// backup I/O, so a bounded damaged set is read as a handful of
  /// sequential range scans instead of scattered point reads — the access
  /// pattern of partial media restore ("instant restore", Sauer et al.).
  /// Returns the number of contiguous runs (sequential read streams).
  StatusOr<uint64_t> ReadPagesFromFullBackup(BackupId backup,
                                             const std::vector<PageId>& pages,
                                             char* const* frames);

  // --- per-page backup copies -------------------------------------------------

  /// Stores a copy of `page_data` for data page `id` on the backup device.
  /// Allocates the new slot before freeing the old one (a failed write
  /// must not destroy the only backup — section 5.2.2). Returns the
  /// backup-device location for the PRI's backup reference.
  StatusOr<PageId> TakePageBackup(PageId id, const char* page_data);

  /// Reads the per-page backup at backup-device location `loc` into `out`.
  Status ReadPageBackup(PageId loc, char* out);

  /// Authoritative slot of `id`'s newest per-page copy, straight from the
  /// (stable-storage) catalog; kInvalidPageId if the page has no copy.
  /// A PRI backup ref is only as durable as the log tail — after a crash
  /// it can point at a recycled slot — so repair falls back to this.
  PageId CurrentPageBackupSlot(PageId id) const;

  /// Appends the page image to the recovery log (kFullPageImage) and
  /// returns the record's LSN for the PRI's backup reference.
  StatusOr<Lsn> LogPageImage(PageId id, const char* page_data);

  /// Reads a page image back from a kFullPageImage record at `lsn`.
  Status ReadLogImage(Lsn lsn, PageId expected_id, char* out);

  BackupStats stats() const;
  SimDevice* backup_device() { return backup_device_; }

  /// The backup catalog models stable storage and survives simulated
  /// crashes; only the log manager is volatile and must be re-wired after
  /// a crash rebuilds it.
  void RewireLog(LogManager* log) { log_ = log; }

 private:
  SimDevice* const data_device_;
  SimDevice* const backup_device_;
  LogManager* log_;
  const uint32_t page_size_;
  const uint64_t data_pages_;  // full-backup region size on backup device

  // Full-backup verification hooks (SetFullBackupVerification). Set once
  // at wiring time, before any concurrent use.
  std::function<bool(PageId)> verifiable_;
  std::function<Status(PageId)> repair_;

  mutable OrderedMutex mu_{LockRank::kBackup};
  std::optional<FullBackupInfo> full_backup_ SPF_GUARDED_BY(mu_);
  BackupId next_backup_id_ SPF_GUARDED_BY(mu_) = 1;
  // Per-page copy slot management in the backup device's tail region.
  std::vector<PageId> free_slots_ SPF_GUARDED_BY(mu_);
  PageId next_fresh_slot_ SPF_GUARDED_BY(mu_);
  /// data page -> slot
  std::unordered_map<PageId, PageId> current_slot_ SPF_GUARDED_BY(mu_);
  BackupStats stats_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
