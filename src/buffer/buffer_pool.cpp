#include "buffer/buffer_pool.h"

#include <cstring>

namespace spf {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  Release();
  pool_ = other.pool_;
  frame_ = other.frame_;
  page_id_ = other.page_id_;
  mode_ = other.mode_;
  other.pool_ = nullptr;
  return *this;
}

PageView PageGuard::view() {
  SPF_CHECK(valid());
  return PageView(pool_->frames_[frame_]->data.get(), pool_->page_size());
}

Lsn PageGuard::page_lsn() { return view().page_lsn(); }

void PageGuard::MarkDirty() {
  SPF_CHECK(valid());
  SPF_CHECK(mode_ == LatchMode::kExclusive)
      << "MarkDirty requires an exclusive latch";
  if (pool_->admission_ != nullptr) {
    // Last-line write-seal re-check under the exclusive latch: a fix
    // admitted just before a restore sealed writes could otherwise dirty
    // the frame and log a record the replay-plan scan already passed.
    // Parking here is safe — the restore sweep needs neither this latch
    // nor any pool mutex to make progress and wake us. An admission
    // error is deliberately ignored: a FAILED restore never admitted
    // anyone, so the record logged now is covered by the next restore's
    // fresh plan scan.
    (void)pool_->admission_->AwaitRestored(page_id_);
  }
  BufferPool::Frame* f = pool_->frames_[frame_].get();
  // The exclusive latch serializes this against WriteBack; the store
  // order (rec_lsn, then dirty with release) is what DirtyPages pairs
  // its acquire load with.
  if (!f->dirty.load(std::memory_order_relaxed)) {
    // recLSN: the first record that will dirty this page is the next one
    // appended, i.e. the current log tail.
    f->rec_lsn.store(pool_->log_->tail_lsn(), std::memory_order_relaxed);
    f->dirty.store(true, std::memory_order_release);
  }
}

void PageGuard::MarkDirtyForRedo(Lsn rec_lsn) {
  SPF_CHECK(valid());
  SPF_CHECK(mode_ == LatchMode::kExclusive);
  BufferPool::Frame* f = pool_->frames_[frame_].get();
  if (!f->dirty.load(std::memory_order_relaxed)) {
    f->rec_lsn.store(rec_lsn, std::memory_order_relaxed);
    f->dirty.store(true, std::memory_order_release);
  } else if (rec_lsn < f->rec_lsn.load(std::memory_order_relaxed)) {
    f->rec_lsn.store(rec_lsn, std::memory_order_relaxed);
  }
}

void PageGuard::Release() {
  if (!valid()) return;
  pool_->Unfix(frame_, mode_);
  pool_ = nullptr;
}

// ---------------------------------------------------------------------------

BufferPool::BufferPool(BufferPoolOptions options, SimDevice* device,
                       LogManager* log)
    : options_(options),
      device_(device),
      log_(log),
      shards_(options.table_shards == 0 ? 1 : options.table_shards) {
  SPF_CHECK_EQ(options_.page_size, device->page_size());
  SPF_CHECK_GT(options_.num_frames, 1u);
  frames_.reserve(options_.num_frames);
  for (size_t i = 0; i < options_.num_frames; ++i) {
    auto f = std::make_unique<Frame>();
    f->data = std::make_unique<char[]>(options_.page_size);
    frames_.push_back(std::move(f));
  }
}

BufferPool::~BufferPool() = default;

Status BufferPool::LoadPage(PageId id, Frame* f) {
  Status read_status;
  for (;;) {
    if (admission_ != nullptr) {
      // Incremental full restore in progress: park until this page's
      // segment is back on the device (on-demand restores serve it ahead
      // of the sweep). An admission error is the restore's failure, not
      // a page failure — propagate it without attempting repair.
      Status adm = admission_->AwaitRestored(id);
      if (!adm.ok()) return adm;
    }
    read_status = device_->ReadPage(id, f->data.get());
    if (read_status.ok() && options_.verify_on_read) {
      PageView page(f->data.get(), options_.page_size);
      read_status = page.Verify(id);
      if (read_status.ok() && verifier_ != nullptr) {
        read_status = verifier_->VerifyOnRead(page);
      }
    }
    if (!read_status.ok()) break;
    if (admission_ != nullptr && !admission_->IsRestored(id)) {
      // A restore sealed admission while we were reading: the image may
      // be a checksum-valid but STALE pre-failure copy served by the
      // revived device (its newest updates exist only in the log until
      // the sweep replays them). The device-level synchronization makes
      // the seal visible here whenever that could have happened —
      // re-admit and re-read the restored image.
      continue;
    }
    return read_status;
  }
  if (read_status.IsMediaFailure()) return read_status;

  // Single-page failure detected (Figure 8): the page could not be read
  // correctly and with plausible contents. Attempt online repair.
  stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
  if (repairer_ == nullptr) {
    // Without single-page recovery support, the failure escalates: the
    // traditional system has no choice but to declare a media failure.
    return Status::MediaFailure(
        "page " + std::to_string(id) +
        " failed verification and no repair is available (escalated): " +
        read_status.ToString());
  }
  stats_.repairs_attempted.fetch_add(1, std::memory_order_relaxed);
  Status repair_status = repairer_->RepairPage(id, f->data.get());
  if (!repair_status.ok()) return repair_status;
  stats_.repairs_succeeded.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<size_t> BufferPool::FindVictim(
    UniqueLock* victim_lock) {
  // Clock sweep; at most two full rounds (first clears reference bits).
  for (size_t step = 0; step < 2 * frames_.size() + 1; ++step) {
    Frame* f = frames_[clock_hand_].get();
    size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f->pin_count.load(std::memory_order_relaxed) > 0) continue;
    if (f->referenced.load(std::memory_order_relaxed)) {
      f->referenced.store(false, std::memory_order_relaxed);
      continue;
    }
    if (f->page_id != kInvalidPageId) {
      if (f->dirty.load(std::memory_order_acquire)) {
        // Write back before eviction. Pin privately (under victim_mu_)
        // so no concurrent evict/discard grabs the frame, then drop
        // victim_mu_ for the blocking latch + I/O: the latch holder may
        // itself be faulting another page and need the victim chooser.
        f->pin_count.fetch_add(1, std::memory_order_relaxed);
        victim_lock->Unlock();
        Status s;
        {
          WriterLock latch(f->latch);
          s = WriteBack(f);
        }
        victim_lock->Lock();
        f->pin_count.fetch_sub(1, std::memory_order_relaxed);
        if (!s.ok()) return s;
        if (f->pin_count.load(std::memory_order_relaxed) > 0 ||
            f->dirty.load(std::memory_order_acquire)) {
          continue;  // raced; try another
        }
      }
      // Unmap under the owning shard's mutex. Hit pins go 0→1 only under
      // that mutex while the mapping exists, so a pin==0 re-check there
      // is authoritative.
      Shard& sh = ShardFor(f->page_id);
      bool raced;
      {
        MutexLock g(sh.mu);
        raced = f->pin_count.load(std::memory_order_relaxed) > 0 ||
                f->dirty.load(std::memory_order_acquire);
        if (!raced) {
          sh.map.erase(f->page_id);
          stats_.evictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (raced) continue;
      f->page_id = kInvalidPageId;
      // The frame is now unmapped with pin_count 0, and every latch
      // holder also holds a pin, so the latch is free and unreachable:
      // retire its sync-object identity so the next page hosted here
      // starts with a clean TSan vector clock instead of inheriting
      // happens-before state from the previous page's incarnation.
      f->latch.ResetIdentityForRecycle();
    }
    f->dirty.store(false, std::memory_order_relaxed);
    f->rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
    return index;
  }
  return Status::Busy("buffer pool exhausted: all frames pinned");
}

Status BufferPool::WriteBack(Frame* f) {
  // Figure 11 sequence: (1) WAL — force the log up to the PageLSN;
  // (2) write the data page; (3) log the PRI update (listener) so the
  // write's completion is recorded before the page can be evicted.
  // The caller holds the exclusive latch, which serializes this against
  // MarkDirty and other write-backs of the same frame.
  PageView page(f->data.get(), options_.page_size);
  Lsn page_lsn = page.page_lsn();
  if (page_lsn != kInvalidLsn) {
    log_->Force(page_lsn);
  }
  // When this write will take a per-page backup copy, restart the cadence
  // BEFORE checksumming: the copy then carries the reset count, so a later
  // repair (copy + k replayed records = count k) reproduces the live
  // frame exactly instead of the copy's stale pre-reset cadence.
  const uint32_t update_count = page.update_count();
  const bool backup_imminent =
      listener_ != nullptr && listener_->BackupImminent(update_count);
  if (backup_imminent) page.reset_update_count();
  page.UpdateChecksum();
  SPF_RETURN_IF_ERROR(device_->WritePage(f->page_id, f->data.get()));
  // Clear rec_lsn BEFORE dirty: a DirtyPages reader that still observes
  // dirty==true but rec_lsn==kInvalidLsn knows the image just reached
  // the device and skips the frame.
  f->rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
  f->dirty.store(false, std::memory_order_release);
  stats_.write_backs.fetch_add(1, std::memory_order_relaxed);
  if (listener_ != nullptr) {
    bool took_backup = listener_->OnPageWritten(f->page_id, page_lsn,
                                                update_count, f->data.get());
    if (took_backup && !backup_imminent) {
      // Listener took a copy it did not announce (no BackupImminent
      // override): restart the cadence after the fact, as before. The
      // copy then predates the reset — acceptable for such listeners.
      page.reset_update_count();
    } else if (!took_backup && backup_imminent) {
      // Announced copy failed (e.g. backup device full): undo the
      // optimistic reset so the next write-back retries the backup at
      // the true count.
      while (page.update_count() < update_count) page.bump_update_count();
    }
  }
  return Status::OK();
}

BufferPool::Frame* BufferPool::TryPin(PageId id, size_t* index) {
  Shard& sh = ShardFor(id);
  MutexLock g(sh.mu);
  auto it = sh.map.find(id);
  if (it == sh.map.end()) return nullptr;
  Frame* f = frames_[it->second].get();
  f->pin_count.fetch_add(1, std::memory_order_relaxed);
  f->referenced.store(true, std::memory_order_relaxed);
  *index = it->second;
  return f;
}

StatusOr<PageGuard> BufferPool::FinishHit(Frame* f, size_t index, PageId id,
                                          LatchMode mode) {
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  if (mode == LatchMode::kExclusive && admission_ != nullptr) {
    // Write admission covers cache hits too: a frame kept across the
    // restore's pool discard must not take a logged update the replay
    // plan never saw while its segment is unswept — the sweep would
    // overwrite the eventual write-back with the pre-update image. The
    // pin taken by TryPin keeps the frame cached while we park; shared
    // fixes stay unthrottled (the cached copy is the current image).
    Status adm = admission_->AwaitRestored(id);
    if (!adm.ok()) {
      f->pin_count.fetch_sub(1, std::memory_order_relaxed);
      return adm;
    }
  }
  if (mode == LatchMode::kShared) {
    f->latch.LockShared();
  } else {
    f->latch.Lock();
  }
  return PageGuard(this, index, id, mode);
}

StatusOr<PageGuard> BufferPool::FixPage(PageId id, LatchMode mode) {
  stats_.fixes.fetch_add(1, std::memory_order_relaxed);
  size_t index = 0;
  if (Frame* f = TryPin(id, &index)) {
    return FinishHit(f, index, id, mode);
  }

  UniqueLock victim_lock(victim_mu_);
  // Another fault may have loaded the page while we queued for the
  // victim chooser — re-check before consuming a victim frame.
  if (Frame* f = TryPin(id, &index)) {
    victim_lock.Unlock();
    return FinishHit(f, index, id, mode);
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  SPF_ASSIGN_OR_RETURN(index, FindVictim(&victim_lock));
  Frame* f = frames_[index].get();
  // Reserve the frame under the shard mutex so concurrent fixes of the
  // same page wait on the latch rather than double-loading. The victim
  // had pin_count 0 and every latch holder also holds a pin (guards,
  // FlushPage, FindVictim's write-back), so the latch is necessarily
  // free: try_lock cannot fail, and never blocking here keeps the
  // mutex-then-latch order deadlock-free (write-back holds the latch
  // while taking mutexes).
  {
    Shard& sh = ShardFor(id);
    MutexLock g(sh.mu);
    f->page_id = id;
    f->pin_count.fetch_add(1, std::memory_order_relaxed);
    f->referenced.store(true, std::memory_order_relaxed);
    sh.map[id] = index;
    SPF_CHECK(f->latch.TryLock()) << "victim frame latched without a pin";
  }
  victim_lock.Unlock();

  Status s = LoadPage(id, f);
  if (!s.ok()) {
    f->latch.Unlock();
    MutexLock vg(victim_mu_);
    Shard& sh = ShardFor(id);
    MutexLock g(sh.mu);
    sh.map.erase(id);
    f->page_id = kInvalidPageId;
    f->pin_count.fetch_sub(1, std::memory_order_relaxed);
    return s;
  }
  if (mode == LatchMode::kShared) {
    f->latch.Unlock();
    f->latch.LockShared();
  }
  return PageGuard(this, index, id, mode);
}

StatusOr<PageGuard> BufferPool::FixNewPage(PageId id) {
  if (admission_ != nullptr) {
    // A freshly allocated page may land in a device region an incremental
    // restore has not reached yet; wait the sweep out for its segment so
    // a later segment restore cannot clobber this page's write-back.
    SPF_RETURN_IF_ERROR(admission_->AwaitRestored(id));
  }
  stats_.fixes.fetch_add(1, std::memory_order_relaxed);
  UniqueLock victim_lock(victim_mu_);
  SPF_ASSIGN_OR_RETURN(size_t index, FindVictim(&victim_lock));
  Frame* f = frames_[index].get();
  {
    Shard& sh = ShardFor(id);
    MutexLock g(sh.mu);
    SPF_CHECK(sh.map.find(id) == sh.map.end())
        << "FixNewPage of already-cached page " << id;
    f->page_id = id;
    f->pin_count.fetch_add(1, std::memory_order_relaxed);
    f->referenced.store(true, std::memory_order_relaxed);
    sh.map[id] = index;
    // Free for the same reason as in FixPage: no pin, no latch holder.
    SPF_CHECK(f->latch.TryLock()) << "victim frame latched without a pin";
  }
  std::memset(f->data.get(), 0, options_.page_size);
  return PageGuard(this, index, id, LatchMode::kExclusive);
}

Status BufferPool::FlushPage(PageId id) {
  Frame* f;
  {
    Shard& sh = ShardFor(id);
    MutexLock g(sh.mu);
    auto it = sh.map.find(id);
    if (it == sh.map.end()) return Status::OK();
    f = frames_[it->second].get();
    if (!f->dirty.load(std::memory_order_acquire)) return Status::OK();
    f->pin_count.fetch_add(1, std::memory_order_relaxed);
  }
  Status s;
  {
    WriterLock latch(f->latch);
    s = WriteBack(f);
  }
  f->pin_count.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

Status BufferPool::FlushAll() {
  std::vector<PageId> dirty;
  {
    MutexLock g(victim_mu_);
    for (auto& f : frames_) {
      if (f->page_id != kInvalidPageId &&
          f->dirty.load(std::memory_order_acquire)) {
        dirty.push_back(f->page_id);
      }
    }
  }
  for (PageId id : dirty) {
    SPF_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

Status BufferPool::EvictPage(PageId id) {
  SPF_RETURN_IF_ERROR(FlushPage(id));
  MutexLock vg(victim_mu_);
  Shard& sh = ShardFor(id);
  MutexLock g(sh.mu);
  auto it = sh.map.find(id);
  if (it == sh.map.end()) return Status::OK();
  Frame* f = frames_[it->second].get();
  if (f->pin_count.load(std::memory_order_relaxed) > 0) {
    return Status::Busy("page pinned");
  }
  if (f->dirty.load(std::memory_order_acquire)) {
    return Status::Busy("page re-dirtied during eviction");
  }
  sh.map.erase(it);
  f->page_id = kInvalidPageId;
  f->rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void BufferPool::DiscardAll() {
  SPF_CHECK_EQ(DiscardAllUnpinned(), 0u) << "DiscardAll with pinned frames";
}

size_t BufferPool::DiscardAllUnpinned() {
  MutexLock vg(victim_mu_);
  size_t kept = 0;
  for (auto& f : frames_) {
    if (f->page_id == kInvalidPageId) continue;
    Shard& sh = ShardFor(f->page_id);
    MutexLock g(sh.mu);
    if (f->pin_count.load(std::memory_order_relaxed) > 0) {
      kept++;
      continue;
    }
    sh.map.erase(f->page_id);
    f->page_id = kInvalidPageId;
    f->dirty.store(false, std::memory_order_relaxed);
    f->rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
    f->referenced.store(false, std::memory_order_relaxed);
  }
  return kept;
}

bool BufferPool::DiscardPage(PageId id) {
  MutexLock vg(victim_mu_);
  Shard& sh = ShardFor(id);
  MutexLock g(sh.mu);
  auto it = sh.map.find(id);
  if (it == sh.map.end()) return true;
  Frame* f = frames_[it->second].get();
  if (f->pin_count.load(std::memory_order_relaxed) > 0) {
    return false;  // in use; caller may retry
  }
  sh.map.erase(it);
  f->page_id = kInvalidPageId;
  f->dirty.store(false, std::memory_order_relaxed);
  f->rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
  return true;
}

std::vector<DirtyPageEntry> BufferPool::DirtyPages() const {
  MutexLock g(victim_mu_);
  std::vector<DirtyPageEntry> out;
  for (const auto& f : frames_) {
    if (f->page_id == kInvalidPageId) continue;
    if (!f->dirty.load(std::memory_order_acquire)) continue;
    Lsn rec_lsn = f->rec_lsn.load(std::memory_order_relaxed);
    // dirty==true with an invalid recLSN means a concurrent write-back
    // already put the image on the device (it clears rec_lsn first) —
    // the frame is clean for this snapshot's purposes.
    if (rec_lsn == kInvalidLsn) continue;
    out.push_back({f->page_id, rec_lsn});
  }
  return out;
}

bool BufferPool::IsCached(PageId id) const {
  Shard& sh = ShardFor(id);
  MutexLock g(sh.mu);
  return sh.map.count(id) > 0;
}

size_t BufferPool::PinnedFrames() const {
  MutexLock g(victim_mu_);
  size_t pinned = 0;
  for (const auto& f : frames_) {
    if (f->page_id != kInvalidPageId &&
        f->pin_count.load(std::memory_order_relaxed) > 0) {
      pinned++;
    }
  }
  return pinned;
}

bool BufferPool::IsDirty(PageId id) const {
  Shard& sh = ShardFor(id);
  MutexLock g(sh.mu);
  auto it = sh.map.find(id);
  return it != sh.map.end() &&
         frames_[it->second]->dirty.load(std::memory_order_acquire);
}

std::optional<Lsn> BufferPool::CachedPageLsn(PageId id) const {
  Shard& sh = ShardFor(id);
  MutexLock g(sh.mu);
  auto it = sh.map.find(id);
  if (it == sh.map.end()) return std::nullopt;
  Frame* f = frames_[it->second].get();
  // try_lock only: never block a scrub scan on a latch, and never invert
  // the latch-before-mutex order of the fix path (try never waits).
  if (!f->latch.TryLockShared()) return kInvalidLsn;  // in flux
  Lsn lsn = PageView(f->data.get(), options_.page_size).page_lsn();
  f->latch.UnlockShared();
  return lsn;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  out.fixes = stats_.fixes.load(std::memory_order_relaxed);
  out.hits = stats_.hits.load(std::memory_order_relaxed);
  out.misses = stats_.misses.load(std::memory_order_relaxed);
  out.evictions = stats_.evictions.load(std::memory_order_relaxed);
  out.write_backs = stats_.write_backs.load(std::memory_order_relaxed);
  out.verify_failures = stats_.verify_failures.load(std::memory_order_relaxed);
  out.repairs_attempted =
      stats_.repairs_attempted.load(std::memory_order_relaxed);
  out.repairs_succeeded =
      stats_.repairs_succeeded.load(std::memory_order_relaxed);
  return out;
}

void BufferPool::ResetStats() {
  stats_.fixes.store(0, std::memory_order_relaxed);
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.misses.store(0, std::memory_order_relaxed);
  stats_.evictions.store(0, std::memory_order_relaxed);
  stats_.write_backs.store(0, std::memory_order_relaxed);
  stats_.verify_failures.store(0, std::memory_order_relaxed);
  stats_.repairs_attempted.store(0, std::memory_order_relaxed);
  stats_.repairs_succeeded.store(0, std::memory_order_relaxed);
}

void BufferPool::Unfix(size_t frame_index, LatchMode mode) {
  Frame* f = frames_[frame_index].get();
  if (mode == LatchMode::kShared) {
    f->latch.UnlockShared();
  } else {
    f->latch.Unlock();
  }
  uint32_t prev = f->pin_count.fetch_sub(1, std::memory_order_relaxed);
  SPF_CHECK_GT(prev, 0u);
}

}  // namespace spf
