#include "buffer/buffer_pool.h"

#include <cstring>

namespace spf {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  Release();
  pool_ = other.pool_;
  frame_ = other.frame_;
  page_id_ = other.page_id_;
  mode_ = other.mode_;
  other.pool_ = nullptr;
  return *this;
}

PageView PageGuard::view() {
  SPF_CHECK(valid());
  return PageView(pool_->frames_[frame_]->data.get(), pool_->page_size());
}

Lsn PageGuard::page_lsn() { return view().page_lsn(); }

void PageGuard::MarkDirty() {
  SPF_CHECK(valid());
  SPF_CHECK(mode_ == LatchMode::kExclusive)
      << "MarkDirty requires an exclusive latch";
  if (pool_->admission_ != nullptr) {
    // Last-line write-seal re-check under the exclusive latch: a fix
    // admitted just before a restore sealed writes could otherwise dirty
    // the frame and log a record the replay-plan scan already passed.
    // Parking here is safe — the restore sweep needs neither this latch
    // nor the pool mutex to make progress and wake us. An admission
    // error is deliberately ignored: a FAILED restore never admitted
    // anyone, so the record logged now is covered by the next restore's
    // fresh plan scan.
    (void)pool_->admission_->AwaitRestored(page_id_);
  }
  std::lock_guard<std::mutex> g(pool_->mu_);
  BufferPool::Frame* f = pool_->frames_[frame_].get();
  if (!f->dirty) {
    f->dirty = true;
    // recLSN: the first record that will dirty this page is the next one
    // appended, i.e. the current log tail.
    f->rec_lsn = pool_->log_->tail_lsn();
  }
}

void PageGuard::MarkDirtyForRedo(Lsn rec_lsn) {
  SPF_CHECK(valid());
  SPF_CHECK(mode_ == LatchMode::kExclusive);
  std::lock_guard<std::mutex> g(pool_->mu_);
  BufferPool::Frame* f = pool_->frames_[frame_].get();
  if (!f->dirty) {
    f->dirty = true;
    f->rec_lsn = rec_lsn;
  } else if (rec_lsn < f->rec_lsn) {
    f->rec_lsn = rec_lsn;
  }
}

void PageGuard::Release() {
  if (!valid()) return;
  pool_->Unfix(frame_, mode_);
  pool_ = nullptr;
}

// ---------------------------------------------------------------------------

BufferPool::BufferPool(BufferPoolOptions options, SimDevice* device,
                       LogManager* log)
    : options_(options), device_(device), log_(log) {
  SPF_CHECK_EQ(options_.page_size, device->page_size());
  SPF_CHECK_GT(options_.num_frames, 1u);
  frames_.reserve(options_.num_frames);
  for (size_t i = 0; i < options_.num_frames; ++i) {
    auto f = std::make_unique<Frame>();
    f->data = std::make_unique<char[]>(options_.page_size);
    frames_.push_back(std::move(f));
  }
}

BufferPool::~BufferPool() = default;

Status BufferPool::LoadPage(PageId id, Frame* f) {
  Status read_status;
  for (;;) {
    if (admission_ != nullptr) {
      // Incremental full restore in progress: park until this page's
      // segment is back on the device (on-demand restores serve it ahead
      // of the sweep). An admission error is the restore's failure, not
      // a page failure — propagate it without attempting repair.
      Status adm = admission_->AwaitRestored(id);
      if (!adm.ok()) return adm;
    }
    read_status = device_->ReadPage(id, f->data.get());
    if (read_status.ok() && options_.verify_on_read) {
      PageView page(f->data.get(), options_.page_size);
      read_status = page.Verify(id);
      if (read_status.ok() && verifier_ != nullptr) {
        read_status = verifier_->VerifyOnRead(page);
      }
    }
    if (!read_status.ok()) break;
    if (admission_ != nullptr && !admission_->IsRestored(id)) {
      // A restore sealed admission while we were reading: the image may
      // be a checksum-valid but STALE pre-failure copy served by the
      // revived device (its newest updates exist only in the log until
      // the sweep replays them). The device-level synchronization makes
      // the seal visible here whenever that could have happened —
      // re-admit and re-read the restored image.
      continue;
    }
    return read_status;
  }
  if (read_status.IsMediaFailure()) return read_status;

  // Single-page failure detected (Figure 8): the page could not be read
  // correctly and with plausible contents. Attempt online repair.
  {
    std::lock_guard<std::mutex> g(mu_);
    stats_.verify_failures++;
  }
  if (repairer_ == nullptr) {
    // Without single-page recovery support, the failure escalates: the
    // traditional system has no choice but to declare a media failure.
    return Status::MediaFailure(
        "page " + std::to_string(id) +
        " failed verification and no repair is available (escalated): " +
        read_status.ToString());
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    stats_.repairs_attempted++;
  }
  Status repair_status = repairer_->RepairPage(id, f->data.get());
  if (!repair_status.ok()) return repair_status;
  {
    std::lock_guard<std::mutex> g(mu_);
    stats_.repairs_succeeded++;
  }
  return Status::OK();
}

StatusOr<size_t> BufferPool::FindVictim(std::unique_lock<std::mutex>* lock) {
  // Clock sweep; at most two full rounds (first clears reference bits).
  for (size_t step = 0; step < 2 * frames_.size() + 1; ++step) {
    Frame* f = frames_[clock_hand_].get();
    size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f->pin_count > 0) continue;
    if (f->referenced) {
      f->referenced = false;
      continue;
    }
    if (f->page_id != kInvalidPageId) {
      if (f->dirty) {
        // Write back before eviction. Pin privately so no one else grabs
        // the frame while we drop the pool mutex for I/O.
        f->pin_count++;
        lock->unlock();
        Status s;
        {
          std::unique_lock<std::shared_mutex> latch(f->latch);
          s = WriteBack(f);
        }
        lock->lock();
        f->pin_count--;
        if (!s.ok()) return s;
        if (f->pin_count > 0 || f->dirty) continue;  // raced; try another
      }
      page_table_.erase(f->page_id);
      stats_.evictions++;
    }
    f->page_id = kInvalidPageId;
    f->dirty = false;
    f->rec_lsn = kInvalidLsn;
    return index;
  }
  return Status::Busy("buffer pool exhausted: all frames pinned");
}

Status BufferPool::WriteBack(Frame* f) {
  // Figure 11 sequence: (1) WAL — force the log up to the PageLSN;
  // (2) write the data page; (3) log the PRI update (listener) so the
  // write's completion is recorded before the page can be evicted.
  PageView page(f->data.get(), options_.page_size);
  Lsn page_lsn = page.page_lsn();
  if (page_lsn != kInvalidLsn) {
    log_->Force(page_lsn);
  }
  page.UpdateChecksum();
  SPF_RETURN_IF_ERROR(device_->WritePage(f->page_id, f->data.get()));
  {
    std::lock_guard<std::mutex> g(mu_);
    f->dirty = false;
    f->rec_lsn = kInvalidLsn;
    stats_.write_backs++;
  }
  if (listener_ != nullptr) {
    bool took_backup = listener_->OnPageWritten(f->page_id, page_lsn,
                                                page.update_count(),
                                                f->data.get());
    if (took_backup) {
      // A fresh backup restarts the per-page update count (section 6).
      page.reset_update_count();
    }
  }
  return Status::OK();
}

StatusOr<PageGuard> BufferPool::FixPage(PageId id, LatchMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  stats_.fixes++;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    stats_.hits++;
    size_t index = it->second;
    Frame* f = frames_[index].get();
    f->pin_count++;
    f->referenced = true;
    lock.unlock();
    if (mode == LatchMode::kExclusive && admission_ != nullptr) {
      // Write admission covers cache hits too: a frame kept across the
      // restore's pool discard must not take a logged update the replay
      // plan never saw while its segment is unswept — the sweep would
      // overwrite the eventual write-back with the pre-update image. The
      // pin taken above keeps the frame cached while we park; shared
      // fixes stay unthrottled (the cached copy is the current image).
      Status adm = admission_->AwaitRestored(id);
      if (!adm.ok()) {
        std::lock_guard<std::mutex> g(mu_);
        f->pin_count--;
        return adm;
      }
    }
    if (mode == LatchMode::kShared) {
      f->latch.lock_shared();
    } else {
      f->latch.lock();
    }
    return PageGuard(this, index, id, mode);
  }

  stats_.misses++;
  SPF_ASSIGN_OR_RETURN(size_t index, FindVictim(&lock));
  Frame* f = frames_[index].get();
  // Reserve the frame under the pool mutex so concurrent fixes of the same
  // page wait on the latch rather than double-loading. The victim had
  // pin_count 0 and every latch holder also holds a pin (guards,
  // FlushPage, FindVictim's write-back), so the latch is necessarily
  // free: try_lock cannot fail, and never blocking here keeps the
  // mutex-then-latch order deadlock-free (write-back holds the latch
  // while taking the mutex).
  f->page_id = id;
  f->pin_count++;
  f->referenced = true;
  page_table_[id] = index;
  SPF_CHECK(f->latch.try_lock()) << "victim frame latched without a pin";
  lock.unlock();

  Status s = LoadPage(id, f);
  if (!s.ok()) {
    f->latch.unlock();
    std::lock_guard<std::mutex> g(mu_);
    page_table_.erase(id);
    f->page_id = kInvalidPageId;
    f->pin_count--;
    return s;
  }
  if (mode == LatchMode::kShared) {
    f->latch.unlock();
    f->latch.lock_shared();
  }
  return PageGuard(this, index, id, mode);
}

StatusOr<PageGuard> BufferPool::FixNewPage(PageId id) {
  if (admission_ != nullptr) {
    // A freshly allocated page may land in a device region an incremental
    // restore has not reached yet; wait the sweep out for its segment so
    // a later segment restore cannot clobber this page's write-back.
    SPF_RETURN_IF_ERROR(admission_->AwaitRestored(id));
  }
  std::unique_lock<std::mutex> lock(mu_);
  stats_.fixes++;
  SPF_CHECK(page_table_.find(id) == page_table_.end())
      << "FixNewPage of already-cached page " << id;
  SPF_ASSIGN_OR_RETURN(size_t index, FindVictim(&lock));
  Frame* f = frames_[index].get();
  f->page_id = id;
  f->pin_count++;
  f->referenced = true;
  page_table_[id] = index;
  std::memset(f->data.get(), 0, options_.page_size);
  // Free for the same reason as in FixPage: no pin, no latch holder.
  SPF_CHECK(f->latch.try_lock()) << "victim frame latched without a pin";
  return PageGuard(this, index, id, LatchMode::kExclusive);
}

Status BufferPool::FlushPage(PageId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame* f = frames_[it->second].get();
  if (!f->dirty) return Status::OK();
  f->pin_count++;
  lock.unlock();
  Status s;
  {
    std::unique_lock<std::shared_mutex> latch(f->latch);
    s = WriteBack(f);
  }
  lock.lock();
  f->pin_count--;
  return s;
}

Status BufferPool::FlushAll() {
  std::vector<PageId> dirty;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& f : frames_) {
      if (f->page_id != kInvalidPageId && f->dirty) dirty.push_back(f->page_id);
    }
  }
  for (PageId id : dirty) {
    SPF_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

Status BufferPool::EvictPage(PageId id) {
  SPF_RETURN_IF_ERROR(FlushPage(id));
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame* f = frames_[it->second].get();
  if (f->pin_count > 0) return Status::Busy("page pinned");
  if (f->dirty) return Status::Busy("page re-dirtied during eviction");
  page_table_.erase(it);
  f->page_id = kInvalidPageId;
  f->rec_lsn = kInvalidLsn;
  stats_.evictions++;
  return Status::OK();
}

void BufferPool::DiscardAll() {
  SPF_CHECK_EQ(DiscardAllUnpinned(), 0u) << "DiscardAll with pinned frames";
}

size_t BufferPool::DiscardAllUnpinned() {
  std::lock_guard<std::mutex> g(mu_);
  size_t kept = 0;
  for (auto& f : frames_) {
    if (f->page_id == kInvalidPageId) continue;
    if (f->pin_count > 0) {
      kept++;
      continue;
    }
    page_table_.erase(f->page_id);
    f->page_id = kInvalidPageId;
    f->dirty = false;
    f->rec_lsn = kInvalidLsn;
    f->referenced = false;
  }
  return kept;
}

bool BufferPool::DiscardPage(PageId id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return true;
  Frame* f = frames_[it->second].get();
  if (f->pin_count > 0) return false;  // in use; caller may retry
  page_table_.erase(it);
  f->page_id = kInvalidPageId;
  f->dirty = false;
  f->rec_lsn = kInvalidLsn;
  return true;
}

std::vector<DirtyPageEntry> BufferPool::DirtyPages() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<DirtyPageEntry> out;
  for (const auto& f : frames_) {
    if (f->page_id != kInvalidPageId && f->dirty) {
      out.push_back({f->page_id, f->rec_lsn});
    }
  }
  return out;
}

bool BufferPool::IsCached(PageId id) const {
  std::lock_guard<std::mutex> g(mu_);
  return page_table_.count(id) > 0;
}

size_t BufferPool::PinnedFrames() const {
  std::lock_guard<std::mutex> g(mu_);
  size_t pinned = 0;
  for (const auto& f : frames_) {
    if (f->page_id != kInvalidPageId && f->pin_count > 0) pinned++;
  }
  return pinned;
}

bool BufferPool::IsDirty(PageId id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(id);
  return it != page_table_.end() && frames_[it->second]->dirty;
}

std::optional<Lsn> BufferPool::CachedPageLsn(PageId id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return std::nullopt;
  Frame* f = frames_[it->second].get();
  // try_lock only: never block a scrub scan on a latch, and never invert
  // the latch-before-mutex order of the fix path (try never waits).
  if (!f->latch.try_lock_shared()) return kInvalidLsn;  // in flux
  Lsn lsn = PageView(f->data.get(), options_.page_size).page_lsn();
  f->latch.unlock_shared();
  return lsn;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = BufferPoolStats();
}

void BufferPool::Unfix(size_t frame_index, LatchMode mode) {
  Frame* f = frames_[frame_index].get();
  if (mode == LatchMode::kShared) {
    f->latch.unlock_shared();
  } else {
    f->latch.unlock();
  }
  std::lock_guard<std::mutex> g(mu_);
  SPF_CHECK_GT(f->pin_count, 0u);
  f->pin_count--;
}

}  // namespace spf
