// Buffer pool with the two hooks the paper's mechanism hangs off:
//
//  * Read path (Figure 8): after a buffer fault reads a page from the
//    device, the page is verified (in-page checks plus an optional
//    cross-check hook, e.g. PageLSN vs. page recovery index). If
//    verification fails, the failure is a single-page failure and the
//    registered PageRepairer is invoked to rebuild the frame contents
//    online; only if repair fails does the error propagate (escalation
//    toward media recovery).
//
//  * Write-back path (Figure 11): after a dirty page is written to the
//    device — and before the frame may be evicted — the registered
//    WriteCompletionListener runs, which is where PRI maintenance logs its
//    PriUpdate record (section 5.2.4). The WAL rule (force log up to
//    PageLSN before the write) is enforced here as well.
//
// Concurrency layout: the id→frame mapping is sharded by page id, so the
// hot path (a cache hit) takes only its shard's mutex for the lookup+pin
// and then the per-frame latch — two fixes of pages in different shards
// share no lock at all. The miss/eviction path additionally serializes on
// a single victim_mu_ that owns the clock hand; faults are device-bound
// anyway, so one victim chooser costs nothing and keeps the clock sweep
// race-free. Per-frame metadata read outside any mutex (pin_count, dirty,
// referenced, rec_lsn) is atomic; page_id mutates only under victim_mu_
// plus the owning shard's mutex, so either lock (or a held pin) makes it
// stable. A pin can go 0→1 only under the shard mutex while the mapping
// exists (hits) or under victim_mu_ (the evictor's private write-back
// pin), which is what makes the evictor's pin==0 checks sound.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/sync.h"
#include "log/log_manager.h"
#include "storage/page.h"
#include "storage/restore_admission.h"
#include "storage/sim_device.h"

namespace spf {

/// Cross-check hook run after in-page verification on every buffer fault.
/// The core module implements this with the PageLSN-vs-PRI comparison that
/// catches stale (plausible-but-wrong) pages (section 5.2.2).
class ReadVerifier {
 public:
  virtual ~ReadVerifier() = default;
  virtual Status VerifyOnRead(PageView page) = 0;
};

/// Online repair hook for pages that fail verification or cannot be read.
/// The core module implements this with single-page recovery (Figure 10).
/// On success, `frame` holds the up-to-date page image.
class PageRepairer {
 public:
  virtual ~PageRepairer() = default;
  virtual Status RepairPage(PageId id, char* frame) = 0;
};

/// Invoked after each completed write of a dirty page, before eviction
/// (Figure 11). The core module logs the PRI update here; a baseline
/// implementation logs a plain PageWriteCompleted record (section 5.1.2);
/// a no-op implementation reproduces unoptimized ARIES.
///
/// `page_data` is the just-written image (page_size bytes, checksummed);
/// backup policies copy from it (section 5.2.1 "normal transaction
/// processing might occasionally take copies of data pages"). Returns true
/// if a new backup copy was taken, in which case the buffer pool resets
/// the frame's update counter (section 6).
class WriteCompletionListener {
 public:
  virtual ~WriteCompletionListener() = default;
  virtual bool OnPageWritten(PageId id, Lsn page_lsn, uint32_t update_count,
                             const char* page_data) = 0;

  /// Asked just before the device write when the frame's counter stands at
  /// `update_count`: return true when the upcoming OnPageWritten would take
  /// a new per-page backup copy at this count. The pool then resets the
  /// frame's counter BEFORE checksumming and writing, so the device image,
  /// the backup copy, and the live frame all record the cadence restart at
  /// this write — a repair that replays k chain records on top of the copy
  /// lands on exactly the live frame's count k, keeping repaired images
  /// byte-identical to never-failed ones.
  virtual bool BackupImminent(uint32_t update_count) const {
    (void)update_count;
    return false;
  }
};

/// Latch mode for fixing a page in the pool.
enum class LatchMode { kShared, kExclusive };

/// Entry of the dirty page table used by checkpoints and restart analysis.
struct DirtyPageEntry {
  PageId page_id;
  Lsn rec_lsn;  ///< LSN of the first record that dirtied the page
};

struct BufferPoolStats {
  uint64_t fixes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_backs = 0;
  uint64_t verify_failures = 0;
  uint64_t repairs_attempted = 0;
  uint64_t repairs_succeeded = 0;
};

struct BufferPoolOptions {
  uint32_t page_size = kDefaultPageSize;
  size_t num_frames = 256;
  /// Run in-page verification plus the ReadVerifier on every buffer fault.
  bool verify_on_read = true;
  /// Shards of the id→frame mapping (hit-path concurrency).
  size_t table_shards = 16;
};

class BufferPool;

/// RAII handle to a fixed (pinned + latched) page. Unpins and unlatches on
/// destruction. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }

  SPF_DISALLOW_COPY(PageGuard);

  bool valid() const { return pool_ != nullptr; }
  PageView view();
  PageId page_id() const { return page_id_; }
  Lsn page_lsn();

  /// Marks the frame dirty. Must be called (before logging the change)
  /// whenever the caller modifies page bytes. Requires kExclusive mode.
  /// Re-checks write admission (restore seal) under the latch, so a fix
  /// admitted just before a restore sealed writes still cannot slip a
  /// logged update past the restore's replay-plan scan.
  void MarkDirty();

  /// Restart-redo variant: marks dirty with an explicit recLSN (the redone
  /// record's LSN) instead of the current log tail, keeping the dirty page
  /// table conservative across a crash during recovery.
  void MarkDirtyForRedo(Lsn rec_lsn);

  /// Explicitly releases the fix early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame_index, PageId id, LatchMode mode)
      : pool_(pool), frame_(frame_index), page_id_(id), mode_(mode) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  LatchMode mode_ = LatchMode::kShared;
};

/// Fixed-size page cache over one data device. Thread-safe.
class BufferPool {
 public:
  BufferPool(BufferPoolOptions options, SimDevice* device, LogManager* log);
  ~BufferPool();

  SPF_DISALLOW_COPY(BufferPool);

  /// Optional hooks; may be null. Not thread-safe vs. concurrent fixes —
  /// install during startup.
  void SetReadVerifier(ReadVerifier* v) { verifier_ = v; }
  void SetPageRepairer(PageRepairer* r) { repairer_ = r; }
  void SetWriteCompletionListener(WriteCompletionListener* l) { listener_ = l; }
  void SetRestoreAdmission(RestoreAdmission* a) { admission_ = a; }

  /// Fixes page `id` in the pool, reading (and verifying, and if necessary
  /// repairing) it on a miss. Figure 8's retrieval logic.
  StatusOr<PageGuard> FixPage(PageId id, LatchMode mode);

  /// Fixes a frame for a freshly allocated page without reading the device
  /// (the caller formats it and logs a PageFormat record).
  StatusOr<PageGuard> FixNewPage(PageId id);

  /// Writes the page back if dirty (WAL force, device write, completion
  /// listener). The page stays cached and clean.
  Status FlushPage(PageId id);

  /// Flushes every dirty page (checkpoint; section 5.2.6 writes the pages
  /// dirty at checkpoint start — snapshot via DirtyPages() first).
  Status FlushAll();

  /// Drops a clean page from the pool; flushes first if dirty.
  Status EvictPage(PageId id);

  /// Simulated crash: discard all frames without writing anything.
  /// CHECK-fails if any frame is pinned.
  void DiscardAll();

  /// Discards every UNPINNED frame without writing anything; pinned
  /// frames survive with their page-table entries. Full media recovery
  /// uses this: a pinned frame there is a reader parked in the failure
  /// funnel whose page is being rebuilt — it re-reads the restored device
  /// copy once its repair resolves. Returns the number of frames kept.
  size_t DiscardAllUnpinned();

  /// Drops a page from the pool WITHOUT flushing (test hook: lose the
  /// buffered copy of one page). Returns false (and does nothing) if the
  /// page is currently pinned.
  bool DiscardPage(PageId id);

  /// Snapshot of the dirty page table (page id + recLSN).
  std::vector<DirtyPageEntry> DirtyPages() const;

  bool IsCached(PageId id) const;
  bool IsDirty(PageId id) const;

  /// Number of frames currently pinned. During a full restore these are
  /// the readers parked in the failure funnel whose frames survive
  /// DiscardAllUnpinned (the pinned-frame drain).
  size_t PinnedFrames() const;

  /// Best-effort PageLSN of the cached frame for `id`. Returns nullopt
  /// when the page is not cached; returns kInvalidLsn when the frame is
  /// exclusively latched (contents in flux). Never blocks. Used by the
  /// scrubber to tell a transiently stale device image (write-back racing
  /// the scan) from a genuinely damaged page.
  std::optional<Lsn> CachedPageLsn(PageId id) const;

  BufferPoolStats stats() const;
  void ResetStats();

  uint32_t page_size() const { return options_.page_size; }
  SimDevice* device() { return device_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<char[]> data;
    /// Mutated only under victim_mu_ + the owning shard's mutex; stable
    /// while either is held or while the reader holds a pin.
    PageId page_id = kInvalidPageId;
    /// MarkDirty stores rec_lsn BEFORE the dirty release-store; readers
    /// pair an acquire load of dirty with the rec_lsn load, and treat
    /// dirty==true with rec_lsn==kInvalidLsn as a write-back race (the
    /// page just reached the device — skip it).
    std::atomic<bool> dirty{false};
    std::atomic<bool> referenced{false};  // clock bit
    std::atomic<uint32_t> pin_count{0};
    std::atomic<Lsn> rec_lsn{kInvalidLsn};
    OrderedSharedMutex latch{LockRank::kFrameLatch};
  };

  /// One slice of the id→frame mapping.
  struct Shard {
    mutable OrderedMutex mu{LockRank::kBufferShard};
    std::unordered_map<PageId, size_t> map SPF_GUARDED_BY(mu);
  };

  Shard& ShardFor(PageId id) const { return shards_[id % shards_.size()]; }

  /// Looks `id` up in its shard and, if mapped, pins the frame and sets
  /// its reference bit. Returns the frame or nullptr.
  Frame* TryPin(PageId id, size_t* index);

  /// Completes a cache hit after TryPin: exclusive-mode admission, then
  /// the latch. On admission failure the pin is dropped.
  StatusOr<PageGuard> FinishHit(Frame* f, size_t index, PageId id,
                                LatchMode mode);

  /// Reads + verifies + (if needed) repairs page `id` into frame `f`.
  /// No pool mutex may be held (device I/O and repair are slow).
  Status LoadPage(PageId id, Frame* f);

  /// Finds a victim frame with pin_count == 0 (clock); flushes it if
  /// dirty. Returns the frame index with the frame unmapped and reset.
  /// victim_mu_ held on entry and exit but released around write-back
  /// I/O (an evictor blocking on a latch while holding victim_mu_ could
  /// deadlock against a latch holder faulting another page).
  StatusOr<size_t> FindVictim(UniqueLock* victim_lock);

  /// Write-back of frame `f` (caller holds the exclusive latch):
  /// checksum, WAL force, device write, completion listener, mark clean.
  Status WriteBack(Frame* f);

  void Unfix(size_t frame_index, LatchMode mode);

  BufferPoolOptions options_;
  SimDevice* device_;
  LogManager* log_;
  ReadVerifier* verifier_ = nullptr;
  PageRepairer* repairer_ = nullptr;
  WriteCompletionListener* listener_ = nullptr;
  RestoreAdmission* admission_ = nullptr;

  std::vector<std::unique_ptr<Frame>> frames_;
  mutable std::vector<Shard> shards_;

  /// Serializes victim choice, page_id reassignment, and whole-pool
  /// sweeps (DirtyPages, DiscardAll*, PinnedFrames). Never held across
  /// device I/O; acquired BEFORE any shard mutex, never after.
  mutable OrderedMutex victim_mu_{LockRank::kBufferVictim};
  size_t clock_hand_ SPF_GUARDED_BY(victim_mu_) = 0;

  struct AtomicStats {
    std::atomic<uint64_t> fixes{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> write_backs{0};
    std::atomic<uint64_t> verify_failures{0};
    std::atomic<uint64_t> repairs_attempted{0};
    std::atomic<uint64_t> repairs_succeeded{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace spf
