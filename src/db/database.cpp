#include "db/database.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace spf {

namespace {

/// The status every operation on a doomed (drain-deadline force-aborted)
/// transaction handle returns. The restore owns the rollback; the owner
/// must drop the handle.
Status DoomedTxnStatus() {
  return Status::Aborted(
      "transaction was force-aborted by a full-restore drain deadline");
}

bool TxnDoomed(Transaction* txn) { return txn != nullptr && txn->doomed(); }

/// Brackets one facade data operation on `txn` (null-safe) so the
/// restore's fallback rollback can wait out an operation that was
/// already executing when the drain deadline fired.
class TxnOpGuard {
 public:
  explicit TxnOpGuard(Transaction* txn) : txn_(txn) {
    if (txn_ != nullptr) txn_->BeginOp();
  }
  ~TxnOpGuard() {
    if (txn_ != nullptr) txn_->EndOp();
  }
  SPF_DISALLOW_COPY(TxnOpGuard);

 private:
  Transaction* const txn_;
};

}  // namespace

Database::Database(DatabaseOptions options) : options_(options) {}

Database::~Database() = default;

StatusOr<std::unique_ptr<Database>> Database::Create(DatabaseOptions options) {
  if (options.num_pages < 4 * kPriEntriesPerWindow) {
    return Status::InvalidArgument(
        "num_pages too small for the two-partition PRI layout (need >= " +
        std::to_string(4 * kPriEntriesPerWindow) + ")");
  }
  std::unique_ptr<Database> db(new Database(options));

  db->data_ = std::make_unique<SimDevice>("data", options.page_size,
                                          options.num_pages,
                                          options.data_profile, &db->clock_);
  // Backup device: room for one full backup plus a page-copy pool.
  db->backup_dev_ = std::make_unique<SimDevice>(
      "backup", options.page_size, options.num_pages + options.num_pages / 2 + 64,
      options.backup_profile, &db->clock_);
  // Archive volume: the sorted-run log archive (same device class as the
  // log — sequential writes, sequential merge reads). Sized for the full
  // archived history plus merge headroom: a merge writes its output
  // before freeing its inputs.
  db->archive_dev_ = std::make_unique<SimDevice>(
      "archive", options.page_size,
      options.num_pages + options.num_pages / 2 + 64, options.log_profile,
      &db->clock_);
  db->wal_ =
      std::make_unique<SimLogDevice>("wal", options.log_profile, &db->clock_);
  db->layout_ = PriLayout::Compute(options.num_pages);

  db->BuildVolatileState();
  // The backup catalog models stable storage; it is created once and
  // survives simulated crashes (only its log pointer is volatile).
  SPF_RETURN_IF_ERROR(db->Bootstrap());
  return db;
}

void Database::BuildVolatileState() {
  // The scrubber, funnel, and scheduler reference everything below; take
  // them down first — in that order (the scrubber reports into the
  // funnel; the funnel's ladder drives the scheduler) — before any
  // component is replaced.
  if (scrubber_ != nullptr) scrubber_->Stop();
  scrubber_.reset();
  if (funnel_ != nullptr) funnel_->Stop();
  funnel_.reset();
  scheduler_.reset();
  // The archiver's drain thread reads the old log manager; stop and drop
  // it (and the LogSource over it) before the log is replaced below.
  if (archiver_ != nullptr) archiver_->Stop();
  log_source_.reset();
  archiver_.reset();

  // Destroy the old manager FIRST: its destructor publishes any staged
  // bytes onto the device, and the new manager reads the device size as
  // its starting LSN — constructing before destroying would corrupt the
  // LSN space.
  log_.reset();
  GroupCommitOptions gc;
  gc.max_batch_bytes = options_.group_commit_bytes;
  gc.max_wait = options_.group_commit_interval;
  log_ = std::make_unique<LogManager>(wal_.get(), gc);
  if (master_record_stash_ != kInvalidLsn) {
    log_->SetMasterRecord(master_record_stash_);
  }

  BufferPoolOptions bp;
  bp.page_size = options_.page_size;
  bp.num_frames = options_.buffer_frames;
  bp.verify_on_read = options_.verify_on_read;
  bp.table_shards = options_.pool_shards;
  pool_ = std::make_unique<BufferPool>(bp, data_.get(), log_.get());

  // Restore gate (rung-5 protocol): installed on the pool permanently;
  // inactive (one atomic load per fault) outside full restores. The log
  // manager's write path parks on the same gate AFTER reserving its log
  // slot, which is what closes the admission-seal TOCTOU (see
  // LogManager::AppendPageRecord).
  restore_gate_ = std::make_unique<RestoreGate>(&clock_);
  pool_->SetRestoreAdmission(restore_gate_.get());
  log_->SetWriteAdmission(restore_gate_.get());

  locks_ = std::make_unique<LockManager>(options_.lock_timeout,
                                         options_.lock_shards);
  txns_ = std::make_unique<TxnManager>(log_.get(), locks_.get());

  alloc_ = std::make_unique<PageAllocator>(options_.num_pages,
                                           layout_.reserved_prefix());
  // Reserve the tail extent of PRI partition B as well.
  for (PageId p = layout_.pri_b_start;
       p < layout_.pri_b_start + layout_.pri_b_pages; ++p) {
    alloc_->MarkAllocated(p);
  }

  if (backups_ == nullptr) {
    backups_ = std::make_unique<BackupManager>(data_.get(), backup_dev_.get(),
                                               log_.get());
    // Full backups must never copy a broken page image over the only
    // backup of that page (section 5.2.2): verify every data page that
    // carries the standard page format, and heal the ones that read bad
    // through the repair ladder before copying. The hooks capture only
    // `this` — the components they touch are the current volatile set.
    backups_->SetFullBackupVerification(
        [this](PageId p) {
          return alloc_->IsAllocated(p) && !layout_.IsPriPage(p) &&
                 !bbl_.Contains(p) && !pool_->IsDirty(p);
        },
        [this](PageId p) {
          SPF_ASSIGN_OR_RETURN(BatchRepairResult r, RepairPages({p}));
          if (!r.failures.empty()) return r.failures.front().status;
          return Status::OK();
        });
  } else {
    backups_->RewireLog(log_.get());
  }
  pri_index_ = std::make_unique<PageRecoveryIndex>(options_.num_pages);
  pri_manager_ = std::make_unique<PriManager>(
      layout_, options_.tracking, options_.backup_policy, pri_index_.get(),
      log_.get(), txns_.get(), backups_.get(), data_.get());
  spr_ = std::make_unique<SinglePageRecovery>(pri_manager_.get(), log_.get(),
                                              backups_.get(), data_.get(),
                                              &clock_);
  cross_check_ = std::make_unique<PageLsnCrossCheck>(pri_manager_.get());

  RecoverySchedulerOptions rs_opts;
  rs_opts.num_workers = options_.recovery_workers;
  rs_opts.batch_repair = options_.batch_repair;
  scheduler_ = std::make_unique<RecoveryScheduler>(spr_.get(), rs_opts);

  // Sorted log archive: the background drain of the durable log into
  // (page-id, LSN)-sorted runs. The archive volume models stable storage
  // (it survives crashes); Recover() re-reads its directory so runs
  // published before the crash keep serving repairs. Every log consumer
  // below reads archived history through it: single-page repair via the
  // ArchiveLogSource, batch repair via the scheduler's range merge, and
  // full restore via MediaRecovery's per-segment run fetch.
  ArchiverOptions ar;
  ar.run_bytes = options_.archive_run_bytes;
  ar.interval_wall_ms =
      static_cast<uint64_t>(options_.archive_interval.count());
  ar.merge_fanin = options_.archive_merge_fanin;
  archiver_ = std::make_unique<LogArchiver>(archive_dev_.get(), log_.get(), ar);
  RestoreGate* gate = restore_gate_.get();
  archiver_->SetRestorePause([gate] { return gate->active(); });
  SPF_CHECK_OK(archiver_->Recover());
  log_source_ = std::make_unique<ArchiveLogSource>(archiver_.get(), log_.get());
  spr_->SetLogSource(log_source_.get());
  scheduler_->SetArchive(archiver_.get());

  // Wire the hooks (Figure 8 read path; Figure 11 write path). All repair
  // work — foreground read-path detections included — funnels through the
  // scheduler.
  if (options_.tracking != WriteTrackingMode::kNone) {
    pool_->SetWriteCompletionListener(pri_manager_.get());
  }
  bool repair_wired = false;
  if (options_.tracking == WriteTrackingMode::kPri) {
    if (options_.verify_on_read) {
      pool_->SetReadVerifier(cross_check_.get());
    }
    if (options_.enable_single_page_repair) {
      pool_->SetPageRepairer(scheduler_.get());
      repair_wired = true;
    }
  }

  // The failure funnel: every detection site reports damaged pages here,
  // and its worker drains them through the RecoverPages ladder — the
  // self-healing pipeline. The foreground read path goes through the
  // funnel too (concurrent readers of one damaged page share a repair),
  // falling back to an inline scheduler repair under backpressure.
  if (repair_wired && options_.auto_escalate) {
    RecoveryCoordinatorOptions fo;
    fo.num_workers = options_.funnel_workers;
    fo.queue_limit = options_.funnel_queue_limit;
    funnel_ = std::make_unique<RecoveryCoordinator>(
        [this](std::vector<PageId> pages) -> StatusOr<FunnelBatchOutcome> {
          SPF_ASSIGN_OR_RETURN(RecoverPagesResult rec,
                               RecoverPages(std::move(pages)));
          FunnelBatchOutcome out;
          out.repaired_spr = rec.repaired_single_page;
          out.skipped_dirty = rec.skipped_dirty;
          if (rec.path == RecoveryPath::kPartialRestore) {
            out.repaired_partial = rec.escalated_to_partial;
          } else if (rec.path == RecoveryPath::kFullRestore) {
            out.full_restores = 1;
            // The whole-device restore healed everything the upper rungs
            // left over (the batch resolves OK; count the heals).
            out.repaired_full = rec.pages_requested - rec.skipped_dirty -
                                rec.repaired_single_page;
          }
          return out;
        },
        data_.get(), fo);
    funnel_->SetInlineFallback(scheduler_.get());
    funnel_->Start();
    pool_->SetPageRepairer(funnel_.get());
    // Pages a direct RepairBatch (sync scrub sweeps, Database::RepairPages)
    // could not heal flow into the funnel instead of stopping at the
    // caller. The ladder itself uses RepairBatchNoEscalation.
    RecoveryCoordinator* funnel = funnel_.get();
    scheduler_->SetEscalationSink([funnel](std::vector<PageId> pages) {
      for (PageId p : pages) {
        (void)funnel->Report(p, FailureOrigin::kEscalation);
      }
    });
  }

  ScrubberOptions sc_opts;
  sc_opts.pages_per_tick = options_.scrub_pages_per_tick;
  sc_opts.interval_sim_ms =
      static_cast<uint64_t>(options_.scrub_interval.count());
  sc_opts.interval_wall_ms =
      static_cast<uint64_t>(options_.scrub_wall_interval.count());
  sc_opts.verify = options_.verify_on_read;
  // Without the repair hook a detected failure escalates, matching the
  // "traditional system" baseline of Figure 1.
  sc_opts.repair = repair_wired;
  scrubber_ = std::make_unique<Scrubber>(
      scheduler_.get(), alloc_.get(), pool_.get(), data_.get(),
      (options_.tracking == WriteTrackingMode::kPri && options_.verify_on_read)
          ? cross_check_.get()
          : nullptr,
      &bbl_, layout_, &clock_, sc_opts);
  if (funnel_ != nullptr) scrubber_->SetFunnel(funnel_.get());
  scrubber_->SetRestoreGate(restore_gate_.get());

  BTreeOptions bt;
  bt.verify_traversals = options_.verify_traversals;
  if (options_.tracking == WriteTrackingMode::kPri) {
    PriManager* pm = pri_manager_.get();
    bt.format_listener = [pm](PageId pid, Lsn format_lsn) {
      pm->pri()->RecordBackup(pid, {BackupKind::kFormatRecord, format_lsn});
    };
  }
  tree_ = std::make_unique<BTree>(bt, pool_.get(), log_.get(), txns_.get(),
                                  alloc_.get(), /*meta_pid=*/0);
}

Status Database::Bootstrap() {
  // Format the meta page directly (the one unlogged write of a database's
  // life); everything after is logged.
  PageBuffer buf(options_.page_size);
  PageView page = buf.view();
  page.Format(0, PageType::kMeta);
  MetaView meta(page);
  DbMetaData* m = meta.mutable_meta();
  m->magic = kDbMetaMagic;
  m->root_pid = kInvalidPageId;
  m->pri_a_start = layout_.pri_a_start;
  m->pri_a_pages = layout_.pri_a_pages;
  m->pri_b_start = layout_.pri_b_start;
  m->pri_b_pages = layout_.pri_b_pages;
  m->num_pages = options_.num_pages;
  m->reserved_pages = layout_.reserved_prefix();
  page.UpdateChecksum();
  SPF_RETURN_IF_ERROR(data_->WritePage(0, buf.data()));

  SPF_RETURN_IF_ERROR(tree_->Create());
  SPF_ASSIGN_OR_RETURN(CheckpointStats ckpt, Checkpoint());
  (void)ckpt;
  return Status::OK();
}

// --- transactions ---------------------------------------------------------------

Txn Database::BeginTxn() { return Txn(this, BeginShared()); }

std::shared_ptr<Transaction> Database::BeginShared() { return txns_->Begin(); }

void Database::ReapDoomedTxn(Transaction* txn) {
  if (txn == nullptr || !txn->doomed() || txn->busy()) return;
  // busy() above: a sibling operation still in flight on this handle
  // defers the reap to that operation's own trailing reap — the rollback
  // must never run concurrently with forward work on the same chain.
  if (!txn->TryClaimRollback()) return;
  RollbackExecutor rollback(log_.get(), tree_.get(), txns_.get());
  if (!rollback.Rollback(txn).ok()) {
    // Mid-undo failure (e.g. the device died again): release the claim
    // so the next restore's doom phase — or the owner's next call —
    // resumes the compensation (CLR chains skip what was already undone).
    txn->RevertRollbackClaim();
  }
}

Status Database::CommitTxn(Transaction* txn) {
  if (TxnDoomed(txn)) {
    ReapDoomedTxn(txn);
    return DoomedTxnStatus();
  }
  return txns_->Commit(txn);
}

Status Database::AbortTxn(Transaction* txn) {
  if (txn != nullptr && !txn->is_system() && !txn->TryClaimFinalize()) {
    if (txn->doomed()) {
      // The drain deadline doomed this transaction first; its rollback
      // belongs to the restore — or, if that deferred, runs right here.
      ReapDoomedTxn(txn);
      return DoomedTxnStatus();
    }
    return Status::Aborted("transaction finalization already in progress");
  }
  RollbackExecutor rollback(log_.get(), tree_.get(), txns_.get());
  auto stats = rollback.Rollback(txn);
  if (!stats.ok()) {
    // The rollback could not run to completion (e.g. the device died
    // mid-undo). Release the claim so the owner can retry once the
    // device heals — or so the next full restore's doom phase picks the
    // transaction up and compensates it (CLR chains make the resumed
    // rollback skip what this attempt already undid).
    if (txn != nullptr && !txn->is_system()) txn->RevertFinalizeClaim();
    return stats.status();
  }
  return Status::OK();
}

// --- data -----------------------------------------------------------------------

template <typename Fn>
auto Database::RunTxnOp(Transaction* txn, Fn&& fn) -> decltype(fn()) {
  auto result = [&]() -> decltype(fn()) {
    // Bracket BEFORE the doomed check: once this operation is visible in
    // ops_in_flight_ (sequentially consistent against TryDoom), a doom
    // that lands after the check can no longer let the restore's
    // rollback phase treat the transaction as idle and race this forward
    // operation — its busy() wait covers the whole window.
    TxnOpGuard op(txn);
    if (TxnDoomed(txn)) return DoomedTxnStatus();
    return fn();
  }();
  // Doomed mid-operation, past the restore's rollback deadline: this
  // thread compensates now that its operation has drained out.
  ReapDoomedTxn(txn);
  return result;
}

Status Database::InsertOp(Transaction* txn, std::string_view key,
                          std::string_view value) {
  return RunTxnOp(txn, [&] { return tree_->Insert(txn, key, value); });
}

Status Database::UpdateOp(Transaction* txn, std::string_view key,
                          std::string_view value) {
  return RunTxnOp(txn, [&] { return tree_->Update(txn, key, value); });
}

Status Database::PutTree(Transaction* txn, std::string_view key,
                         std::string_view value) {
  // Insert-or-update: the one place the upsert fallback rule lives
  // (shared by the point op and the WriteBatch loop).
  Status s = tree_->Insert(txn, key, value);
  if (s.IsFailedPrecondition()) {
    return tree_->Update(txn, key, value);
  }
  return s;
}

Status Database::PutOp(Transaction* txn, std::string_view key,
                       std::string_view value) {
  return RunTxnOp(txn, [&] { return PutTree(txn, key, value); });
}

Status Database::DeleteOp(Transaction* txn, std::string_view key) {
  return RunTxnOp(txn, [&] { return tree_->Delete(txn, key); });
}

StatusOr<std::string> Database::GetOp(Transaction* txn, std::string_view key) {
  return RunTxnOp(
      txn, [&]() -> StatusOr<std::string> { return tree_->Get(txn, key); });
}

Status Database::ScanOp(
    Transaction* txn, std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) {
  return RunTxnOp(txn, [&] { return tree_->Scan(txn, start, end, fn); });
}

Status Database::ApplyBatchOp(Transaction* txn, const WriteBatch& batch) {
  SPF_CHECK(txn != nullptr) << "batches require a transaction";
  // ONE facade bracket for the whole batch: the in-flight registration,
  // doomed-handle admission check, and trailing deferred-rollback reap
  // are paid once instead of once per operation (bench E13's axis).
  return RunTxnOp(txn, [&]() -> Status {
    // Savepoint: the chain head before the batch's first record. A
    // mid-batch failure compensates exactly the records after it, so
    // the batch applies atomically while the transaction stays active.
    const Lsn savepoint = txn->last_lsn();
    for (const WriteBatch::Op& op : batch.ops()) {
      Status s;
      switch (op.kind) {
        case WriteBatch::OpKind::kPut:
          s = PutTree(txn, op.key, op.value);
          break;
        case WriteBatch::OpKind::kInsert:
          s = tree_->Insert(txn, op.key, op.value);
          break;
        case WriteBatch::OpKind::kUpdate:
          s = tree_->Update(txn, op.key, op.value);
          break;
        case WriteBatch::OpKind::kDelete:
          s = tree_->Delete(txn, op.key);
          break;
      }
      if (!s.ok()) {
        RollbackExecutor rollback(log_.get(), tree_.get(), txns_.get());
        auto undone = rollback.RollbackTo(txn, savepoint);
        if (!undone.ok()) {
          // The pre-batch state cannot be restored in place (e.g. the
          // device died mid-undo): atomicity now requires taking the
          // whole transaction down. AbortTxn resumes the compensation
          // (CLR chains skip what RollbackTo already undid); if even
          // that fails, the next restore's doom phase finishes the job.
          (void)AbortTxn(txn);
          return undone.status();
        }
        return s;
      }
    }
    return Status::OK();
  });
}

Status Database::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) {
  return tree_->Scan(nullptr, start, end, fn);
}

StatusOr<std::string> Database::Get(std::string_view key) {
  return GetOp(nullptr, key);
}

// --- operations -------------------------------------------------------------------

StatusOr<CheckpointStats> Database::Checkpoint() {
  Checkpointer ckpt(log_.get(), pool_.get(), txns_.get(), alloc_.get(), &bbl_,
                    options_.tracking == WriteTrackingMode::kPri
                        ? pri_manager_.get()
                        : nullptr);
  auto stats = ckpt.Take();
  if (stats.ok()) {
    master_record_stash_ = log_->GetMasterRecord();
  }
  return stats;
}

StatusOr<FullBackupInfo> Database::TakeFullBackup() {
  // Capture the backup LSN BEFORE the flush: restores replay the log from
  // this point, so every update at or below it must be in the image —
  // which the flush guarantees only for updates that existed when it
  // began. Capturing after the flush leaves a window where a commit lands
  // below the backup LSN on an already-flushed page; its effect would
  // then be in neither the image nor the replayed log range. Updates
  // racing in after this capture carry higher LSNs and are covered by
  // replay (conditional redo makes the flushed ones no-ops).
  log_->ForceAll();
  const Lsn backup_lsn = log_->durable_lsn();
  SPF_RETURN_IF_ERROR(pool_->FlushAll());
  if (options_.tracking == WriteTrackingMode::kPri) {
    SPF_RETURN_IF_ERROR(pri_manager_->WriteDirtyWindows());
  }
  SPF_ASSIGN_OR_RETURN(FullBackupInfo info, backups_->TakeFullBackup(backup_lsn));
  if (options_.tracking == WriteTrackingMode::kPri) {
    pri_manager_->OnFullBackup(info.id);
  }
  return info;
}

// --- failure & recovery ---------------------------------------------------------------

void Database::SimulateCrash() {
  // Kill the group-commit drainer FIRST and discard its staged (never
  // published) records: staged bytes are strictly more volatile than the
  // unforced device tail, and a drainer still running would republish
  // them after the DropUnsynced below.
  log_->Crash();
  // The unforced log tail is lost; devices keep their contents.
  wal_->DropUnsynced();
  pool_->DiscardAll();
  // Outstanding handles survive the crash as objects (their control
  // blocks are shared), but their transactions die with the volatile
  // state: doom them so every later call on a stale handle reports
  // kDoomed, and claim their rollbacks — restart undo owns the
  // compensation via the LOG, not via these in-memory chains.
  txns_->DoomAllForCrash();
  // All in-memory state vanishes; rebuild empty shells. The master record
  // survives in master_record_stash_ (it models stable storage).
  BuildVolatileState();
}

StatusOr<RestartStats> Database::Restart() {
  RestartRecovery restart(log_.get(), pool_.get(), txns_.get(), tree_.get(),
                          alloc_.get(), &bbl_,
                          options_.tracking == WriteTrackingMode::kPri
                              ? pri_manager_.get()
                              : nullptr,
                          &clock_);
  SPF_ASSIGN_OR_RETURN(RestartStats stats, restart.Run());
  // Standard practice: checkpoint at the end of restart so the next crash
  // does not re-run this recovery.
  SPF_RETURN_IF_ERROR(Checkpoint().status());
  return stats;
}

StatusOr<MediaRecoveryStats> Database::RecoverMedia() {
  // The restore-gate protocol (gate → drain → segmented restore →
  // readmit): instead of aborting every active transaction up front
  // (section 5.1.3's baseline, the pre-gate behavior), in-flight
  // transactions run to commit on their cached working sets while new
  // ones park at the admission gate; only the stragglers a bounded drain
  // deadline catches take the old forced-abort path. Their updates were
  // replayed from the log during the restore, so they are compensated by
  // restart-style undo after the replay.

  // One sweep at a time: the funnel's ladder serializes its own climbs,
  // but a manual call must not overlap a funnel-driven one. If another
  // restore completed while this call waited for the lock and the device
  // came back healthy, the damage this climb was escalating is already
  // healed (or will re-detect through the ladder's cheaper rungs) — do
  // not run a second whole-device restore back to back.
  uint64_t generation = restore_generation_.load(std::memory_order_acquire);
  MutexLock restore_lock(recover_media_mu_);
  if (restore_generation_.load(std::memory_order_acquire) != generation &&
      !data_->device_failed()) {
    return MediaRecoveryStats{};
  }

  // Mark the whole protocol on the gate so the background scrubber
  // pauses through the gate/drain window too, not just the sweep.
  restore_gate_->BeginProtocol();

  // Phase 1 — gate: park new user transactions. Scope order matters at
  // exit: EndProtocol runs BEFORE OpenGate (protocol declared later =
  // destroyed first), so a transaction released by the reopening gate
  // never observes a stale "restore in progress".
  txns_->CloseGate();
  struct GateReopener {
    TxnManager* txns;
    ~GateReopener() { txns->OpenGate(); }
  } reopener{txns_.get()};  // every exit path readmits
  struct ProtocolScope {
    RestoreGate* gate;
    ~ProtocolScope() { gate->EndProtocol(); }
  } protocol{restore_gate_.get()};

  RestorePhases phases;
  phases.early_admission = options_.restore_early_admission;
  phases.active_at_gate = txns_->ActiveUserCount();

  // Phase 2 — drain: let in-flight transactions finish on cached pages.
  auto drain_start = std::chrono::steady_clock::now();
  size_t remaining = txns_->WaitForUserDrain(options_.restore_drain_timeout);
  phases.drain_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                drain_start)
          .count();
  std::vector<std::shared_ptr<Transaction>> doomed;
  if (remaining > 0) doomed = txns_->DoomActiveUserTxns();
  phases.doomed = doomed.size();
  phases.drained = phases.active_at_gate - phases.doomed;

  // Phase 3 — segmented restore, publishing progress through the gate;
  // phase 4 — early readmission happens inside the sweep (on_sweep_begin)
  // so transactions resume while the restore is still running.
  MediaRecovery media(log_.get(), backups_.get(), data_.get(), pool_.get(),
                      options_.tracking == WriteTrackingMode::kPri
                          ? pri_manager_.get()
                          : nullptr,
                      &clock_, archiver_.get());
  FullRestoreOptions fr;
  fr.gate = restore_gate_.get();
  fr.segment_pages = options_.restore_segment_pages;
  if (options_.restore_early_admission) {
    TxnManager* txns = txns_.get();
    fr.on_sweep_begin = [txns] { txns->OpenGate(); };
  }
  SPF_ASSIGN_OR_RETURN(MediaRecoveryStats stats, media.Run(fr));

  // Fallback branch: compensate the replayed updates of the stragglers
  // the drain deadline caught. The shared_ptrs returned by the doom
  // phase keep their objects alive through this loop even if an owner
  // thread observes Aborted and drops its handle concurrently (the
  // owner's handle likewise stays readable for as long as it is held —
  // ordinary shared-state teardown, no zombie retention). An operation
  // that was already executing inside the tree when the deadline fired
  // may still be draining out (it resumes via early admission); wait it
  // out — bounded — so the rollback never races the owner's last
  // operation. A straggler still busy past the deadline (e.g. parked in
  // the failure funnel on a batch that resolves only when THIS call
  // returns) is not rolled back concurrently: its compensation defers to
  // the owner's thread, which runs it the moment the operation drains
  // out of the facade (ReapDoomedTxn). The one-shot rollback claim makes
  // the two agents mutually exclusive.
  RollbackExecutor rollback(log_.get(), tree_.get(), txns_.get());
  auto busy_deadline =
      std::chrono::steady_clock::now() + options_.restore_drain_timeout;
  for (const std::shared_ptr<Transaction>& txn : doomed) {
    // One shared bound across all stragglers: the wait exists to drain a
    // last in-flight operation, not to serialize N full timeouts.
    while (txn->busy() && std::chrono::steady_clock::now() < busy_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (txn->busy()) {
      phases.deferred_rollbacks++;
      continue;
    }
    if (!txn->TryClaimRollback()) continue;  // owner already compensated
    auto rb = rollback.Rollback(txn.get());
    if (!rb.ok()) {
      txn->RevertRollbackClaim();  // next doom phase resumes via CLRs
      return rb.status();
    }
  }

  phases.segments = stats.segments;
  phases.on_demand_segments = stats.on_demand_segments;
  phases.admission_waits = restore_gate_->admission_waits();
  phases.first_admission_sim_s = restore_gate_->first_admission_sim_seconds();
  stats.phases = phases;
  if (funnel_ != nullptr) funnel_->NoteGatedRestore(phases);

  SPF_RETURN_IF_ERROR(Checkpoint().status());
  restore_generation_.fetch_add(1, std::memory_order_acq_rel);
  return stats;
}

StatusOr<RecoverPagesResult> Database::RecoverPages(std::vector<PageId> pages) {
  RecoverPagesResult result;
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  result.pages_requested = pages.size();

  // Unbounded damage: the device failed as a whole — there is nothing the
  // page-wise rungs can even read back. Straight to the bottom rung.
  if (data_->device_failed()) {
    SPF_ASSIGN_OR_RETURN(result.media, RecoverMedia());
    result.path = RecoveryPath::kFullRestore;
    return result;
  }

  // A dirty buffered copy supersedes the device image; the "damage" is a
  // stale-on-purpose device page that the next write-back overwrites.
  auto dirty_end = std::remove_if(pages.begin(), pages.end(), [&](PageId p) {
    return pool_->IsDirty(p);
  });
  result.skipped_dirty = static_cast<uint64_t>(pages.end() - dirty_end);
  pages.erase(dirty_end, pages.end());
  if (pages.empty()) return result;

  // Rung 1: coordinated single-page repairs for small batches.
  std::vector<PageId> remaining = pages;
  if (options_.enable_single_page_repair &&
      options_.tracking == WriteTrackingMode::kPri &&
      pages.size() <= options_.spr_batch_limit) {
    // NoEscalation: this ladder escalates leftovers to partial restore
    // itself; reporting them into the funnel (which calls this ladder)
    // would loop.
    SPF_ASSIGN_OR_RETURN(BatchRepairResult batch,
                         scheduler_->RepairBatchNoEscalation(std::move(pages)));
    result.repaired_single_page = batch.repaired;
    if (batch.failed == 0) {
      result.path = RecoveryPath::kSinglePage;
      return result;
    }
    remaining.clear();
    for (const PageRepairOutcome& f : batch.failures) {
      remaining.push_back(f.page_id);
    }
  }

  // Rung 2: bounded media damage — partial restore through the scheduler.
  result.escalated_to_partial = remaining.size();
  MediaRecovery media(log_.get(), backups_.get(), data_.get(), pool_.get(),
                      options_.tracking == WriteTrackingMode::kPri
                          ? pri_manager_.get()
                          : nullptr,
                      &clock_, archiver_.get());
  auto partial = media.RunPartial(std::move(remaining), scheduler_.get());
  if (partial.ok()) {
    result.media = *partial;
    result.path = RecoveryPath::kPartialRestore;
    return result;
  }

  // Rung 3: partial restore could not certify the set — full restore.
  SPF_ASSIGN_OR_RETURN(result.media, RecoverMedia());
  result.path = RecoveryPath::kFullRestore;
  return result;
}

StatusOr<ScrubStats> Database::Scrub() { return scrubber_->SweepAll(); }

StatusOr<BatchRepairResult> Database::RepairPages(std::vector<PageId> pages) {
  return scheduler_->RepairBatch(std::move(pages));
}

Status Database::CheckOffline(uint64_t* pages_checked) {
  // Read each allocated page once, directly from the device (section 4.1:
  // scalable offline algorithms read each page only once).
  PageBuffer buf(options_.page_size);
  uint64_t checked = 0;
  for (PageId p = 0; p < options_.num_pages; ++p) {
    if (!alloc_->IsAllocated(p)) continue;
    if (layout_.IsPriPage(p)) continue;
    if (bbl_.Contains(p)) continue;  // retired locations are not data
    // Skip pages that are dirty in the buffer pool: the device copy is
    // legitimately stale (offline checks assume a quiesced database).
    if (pool_->IsDirty(p)) continue;
    SPF_RETURN_IF_ERROR(data_->ReadPage(p, buf.data()));
    PageView page = buf.view();
    SPF_RETURN_IF_ERROR(page.Verify(p));
    checked++;
  }
  // Cross-page invariants via the comprehensive B-tree check.
  uint64_t tree_pages = 0;
  SPF_RETURN_IF_ERROR(tree_->VerifyAll(&tree_pages));
  if (pages_checked != nullptr) *pages_checked = checked;
  return Status::OK();
}

StatusOr<PageId> Database::RelocatePage(PageId old_pid) {
  // Locate the single incoming pointer by descending toward the node's
  // low fence key. Latch order is top-down, so take the owner exclusively
  // before the victim.
  std::string probe_key;
  bool probe_neg_inf = false;
  {
    SPF_ASSIGN_OR_RETURN(PageGuard g, pool_->FixPage(old_pid, LatchMode::kShared));
    PageType type = g.view().type();
    if (type != PageType::kBTreeLeaf && type != PageType::kBTreeBranch) {
      return Status::NotSupported("relocation supports B-tree pages only");
    }
    BTreeNode node(g.view());
    if (node.has_foster_child()) {
      return Status::NotSupported("relocating a foster parent: adopt first");
    }
    KeyBound low = node.low_fence();
    probe_neg_inf = low.infinite;
    probe_key = low.key;
  }

  SPF_ASSIGN_OR_RETURN(PageId root, tree_->root_pid());
  if (root == old_pid) {
    return Status::NotSupported("root relocation not supported");
  }

  // Walk from the root toward the probe key, keeping only the candidate
  // owner latched.
  PageId owner = kInvalidPageId;
  bool owner_is_foster = false;
  PageGuard owner_guard;
  PageId cur = root;
  for (int depth = 0; depth < 64 && owner == kInvalidPageId; ++depth) {
    SPF_ASSIGN_OR_RETURN(PageGuard g, pool_->FixPage(cur, LatchMode::kExclusive));
    BTreeNode node(g.view());
    if (node.has_foster_child() && node.foster_child() == old_pid) {
      owner = cur;
      owner_is_foster = true;
      owner_guard = std::move(g);
      break;
    }
    if (node.has_foster_child() && !probe_neg_inf &&
        !node.CoversKey(probe_key)) {
      cur = node.foster_child();
      continue;
    }
    if (node.is_leaf()) {
      return Status::NotFound("page has no incoming pointer (orphan?)");
    }
    uint16_t slot = probe_neg_inf ? 0 : node.FindChildSlot(probe_key);
    PageId child = node.ChildAt(slot);
    if (child == old_pid) {
      owner = cur;
      owner_is_foster = false;
      owner_guard = std::move(g);
      break;
    }
    cur = child;
  }
  if (owner == kInvalidPageId) {
    return Status::NotFound("owner of page not found");
  }

  SPF_ASSIGN_OR_RETURN(PageGuard victim_guard,
                       pool_->FixPage(old_pid, LatchMode::kExclusive));
  BTreeNode victim(victim_guard.view());
  if (victim.has_foster_child()) {
    return Status::NotSupported("relocating a foster parent: adopt first");
  }

  SPF_ASSIGN_OR_RETURN(PageId new_pid, alloc_->Allocate());
  Transaction* sys = txns_->BeginSystem();

  // New location: format with the victim's full content; the format
  // record is simultaneously the new page's backup (section 5.2.1 "page
  // copies might also remain after a page migration").
  auto new_guard_or = pool_->FixNewPage(new_pid);
  if (!new_guard_or.ok()) {
    alloc_->Free(new_pid);
    txns_->Commit(sys);
    return new_guard_or.status();
  }
  PageGuard new_guard = std::move(new_guard_or).value();
  PageView new_page = new_guard.view();
  new_page.Format(new_pid, victim_guard.view().type());
  std::string content = victim.SerializeContent();
  SPF_RETURN_IF_ERROR(BTreeNode::InitFromContent(new_page, content));
  new_guard.MarkDirty();
  btree_log::FormatBody format;
  format.page_type = static_cast<uint16_t>(new_page.type());
  format.node_content = content;
  LogRecord format_rec;
  format_rec.type = LogRecordType::kPageFormat;
  format_rec.page_id = new_pid;
  format_rec.body = btree_log::Encode(format);
  Lsn format_lsn = sys->LogPage(log_.get(), &format_rec, new_page);
  if (options_.tracking == WriteTrackingMode::kPri) {
    pri_manager_->pri()->RecordBackup(new_pid,
                                      {BackupKind::kFormatRecord, format_lsn});
  }

  // Swap the single incoming pointer.
  owner_guard.MarkDirty();
  btree_log::MigrateBody mig;
  mig.old_child = old_pid;
  mig.new_child = new_pid;
  LogRecord mig_rec;
  mig_rec.type = LogRecordType::kPageMigrate;
  mig_rec.page_id = owner;
  mig_rec.body = btree_log::Encode(mig);
  sys->LogPage(log_.get(), &mig_rec, owner_guard.view());
  BTreeNode owner_node(owner_guard.view());
  if (owner_is_foster) {
    owner_node.ReplaceFosterChild(new_pid);
  } else {
    uint16_t slot = probe_neg_inf ? 0 : owner_node.FindChildSlot(probe_key);
    SPF_CHECK_EQ(owner_node.ChildAt(slot), old_pid);
    owner_node.ReplaceChild(slot, new_pid);
  }

  // Retire the old location: ban it and log the fact. (The id stays
  // allocated so the bad location is never handed out again.)
  LogRecord bad_rec;
  bad_rec.type = LogRecordType::kBadBlock;
  bad_rec.page_id = old_pid;
  sys->Log(log_.get(), &bad_rec);
  bbl_.Add(old_pid);

  SPF_RETURN_IF_ERROR(txns_->Commit(sys));

  victim_guard.Release();
  new_guard.Release();
  owner_guard.Release();
  // Drop the stale frame for the retired location.
  pool_->DiscardPage(old_pid);
  return new_pid;
}

StatsSnapshot Database::Stats() const {
  StatsSnapshot s;
  s.pool = pool_->stats();
  s.spr = spr_->stats();
  s.scheduler = scheduler_->stats();
  s.scrubber = scrubber_->totals();
  if (funnel_ != nullptr) s.funnel = funnel_->totals();
  s.locks = locks_->stats();
  s.log = log_->stats();
  s.archive = archiver_->stats();
  s.restore_admission_waits = restore_gate_->admission_waits();
  if (cross_check_ != nullptr) {
    s.cross_checks = cross_check_->checks();
    s.cross_check_mismatches = cross_check_->mismatches();
  }
  return s;
}

StatusOr<PageId> Database::LeafPageOf(std::string_view key) {
  SPF_ASSIGN_OR_RETURN(PageId cur, tree_->root_pid());
  for (int depth = 0; depth < 64; ++depth) {
    auto guard = pool_->FixPage(cur, LatchMode::kShared);
    if (!guard.ok()) return guard.status();
    BTreeNode node(guard->view());
    if (node.has_foster_child() && !node.CoversKey(key)) {
      cur = node.foster_child();
      continue;
    }
    if (node.is_leaf()) return cur;
    cur = node.ChildAt(node.FindChildSlot(key));
  }
  return Status::Internal("tree too deep");
}

}  // namespace spf
