// WriteBatch — an atomic group of write operations applied through one
// facade bracket.
//
// Building a batch is pure in-memory staging (no locks, no log records,
// no tree access); Txn::Apply executes the staged operations in order
// under a SINGLE facade operation bracket, so the per-operation costs of
// the v2 facade — the in-flight bracket the restore-gate protocol uses
// to wait out stragglers (two sequentially-consistent atomics), the
// doomed-handle admission check, and the deferred-rollback reap — are
// paid once per batch instead of once per operation (bench E13 measures
// the win). Apply is all-or-nothing: a mid-batch failure rolls the
// transaction back to its pre-batch state via the per-transaction log
// chain (compensation records), the batch's locks notwithstanding, and
// the transaction stays active.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spf {

/// Staged, reusable group of write operations. Not thread-safe; cheap to
/// move. Apply consumes it (Txn::Apply takes it by rvalue).
class WriteBatch {
 public:
  /// One staged operation's verb. Semantics match the point ops: kInsert
  /// fails on a present key, kUpdate on an absent one, kPut never on
  /// either, kDelete on an absent key.
  enum class OpKind : uint8_t { kPut, kInsert, kUpdate, kDelete };

  /// One staged operation.
  struct Op {
    OpKind kind;        ///< the verb
    std::string key;    ///< target key
    std::string value;  ///< empty (unused) for kDelete
  };

  WriteBatch() = default;  ///< empty batch

  /// Stages an insert-or-update.
  void Put(std::string_view key, std::string_view value) {
    ops_.push_back({OpKind::kPut, std::string(key), std::string(value)});
  }
  /// Stages an insert-only (FailedPrecondition at Apply if present).
  void Insert(std::string_view key, std::string_view value) {
    ops_.push_back({OpKind::kInsert, std::string(key), std::string(value)});
  }
  /// Stages an update-only (NotFound at Apply if absent).
  void Update(std::string_view key, std::string_view value) {
    ops_.push_back({OpKind::kUpdate, std::string(key), std::string(value)});
  }
  /// Stages a delete (NotFound at Apply if absent).
  void Delete(std::string_view key) {
    ops_.push_back({OpKind::kDelete, std::string(key), std::string()});
  }

  /// Staged operations in Apply order.
  const std::vector<Op>& ops() const { return ops_; }

  /// Number of staged operations.
  size_t size() const { return ops_.size(); }
  /// True when nothing is staged.
  bool empty() const { return ops_.empty(); }

  /// Forgets every staged operation (the batch can be rebuilt and
  /// re-applied).
  void Clear() { ops_.clear(); }

 private:
  std::vector<Op> ops_;
};

}  // namespace spf
