// Txn — the move-only RAII transaction handle of the v2 client API.
//
//   spf::Txn txn = db->BeginTxn();
//   SPF_CHECK_OK(txn.Put("key", "value"));
//   auto v = txn.Get("key");
//   WriteBatch batch;
//   batch.Put("a", "1"); batch.Put("b", "2");
//   SPF_CHECK_OK(txn.Apply(std::move(batch)));   // atomic, one bracket
//   SPF_CHECK_OK(txn.Commit());
//
// Lifetime contract (v2): the handle OWNS the transaction. Destroying an
// uncommitted handle aborts the transaction and releases its locks —
// forgetting to finish a transaction can no longer leak locks or memory.
// The transaction object itself is a control block shared between the
// handle and the TxnManager's active table, so a handle outliving the
// engine-side retirement (e.g. a transaction force-aborted by a
// full-restore drain deadline) reads the doomed flag from live memory
// instead of a dangling pointer — the v1 zombie-retention machinery this
// replaces is gone. The one remaining rule: handles must not outlive the
// Database that issued them.
//
// Error reporting: write operations return TxnError (implicitly
// convertible to Status), whose kind()/retryable() tell the caller
// whether to retry the transaction, re-begin, or give up — see
// txn_error.h. Get/Scan return StatusOr/Status for value plumbing;
// last_error() carries their classification.
//
// Thread-safety: like any single transaction, a Txn handle is confined
// to one thread at a time (different Txns are fully concurrent).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "db/txn_error.h"
#include "db/write_batch.h"
#include "log/log_record.h"

namespace spf {

class Database;
class Transaction;

/// Move-only RAII handle over one user transaction (see file comment).
class Txn {
 public:
  /// Empty handle (valid() == false); assign from Database::BeginTxn().
  Txn() = default;

  /// Move: `other` becomes an empty handle.
  Txn(Txn&& other) noexcept { *this = std::move(other); }
  /// Move-assign: auto-aborts whatever this handle owned, then steals.
  Txn& operator=(Txn&& other) noexcept;

  Txn(const Txn&) = delete;             ///< move-only
  Txn& operator=(const Txn&) = delete;  ///< move-only

  /// Auto-abort: an active (un-finished) transaction is rolled back and
  /// its locks released. Never throws; a rollback failure (device dead
  /// mid-undo) leaves the transaction for the next restore's doom phase
  /// to compensate — exactly where an explicit failed Abort leaves it.
  ~Txn();

  // --- data (keys and values are byte strings) -------------------------------

  /// Insert-or-update.
  TxnError Put(std::string_view key, std::string_view value);
  /// Insert-only; kUser/FailedPrecondition if present.
  TxnError Insert(std::string_view key, std::string_view value);
  /// Update-only; kUser/NotFound if absent.
  TxnError Update(std::string_view key, std::string_view value);
  /// Removes `key`; kUser/NotFound if absent.
  TxnError Delete(std::string_view key);
  /// Locked (shared) read; classification lands in last_error().
  StatusOr<std::string> Get(std::string_view key);
  /// Transactional range scan: visits [start, end) in key order until
  /// `fn` returns false (empty `end` = to the last key), acquiring a
  /// shared lock on every delivered key — the same consistency story as
  /// the point reads (locks held to commit). `fn` must not re-enter the
  /// database.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>& fn);

  /// Applies every staged operation in order under ONE facade bracket
  /// (one in-flight registration, one doomed-handle check — the
  /// per-operation overhead is paid once per batch; bench E13).
  /// All-or-nothing: on a mid-batch failure the transaction is rolled
  /// back to its pre-batch state through the per-transaction log chain
  /// and STAYS ACTIVE — earlier batches and point operations survive,
  /// nothing of this batch does. A transparent single-page repair under
  /// a mid-batch operation is not a failure (the operation merely
  /// waited). The batch is consumed.
  TxnError Apply(WriteBatch&& batch);

  // --- finalization -----------------------------------------------------------

  /// Commits (forces the log through the commit record) and finishes the
  /// handle. kDoomed if a full-restore drain deadline force-aborted the
  /// transaction first.
  TxnError Commit();

  /// Rolls back via the per-transaction chain and finishes the handle.
  /// Calling Abort on an already-finished handle is an error (kUser);
  /// simply destroying an active handle aborts implicitly.
  TxnError Abort();

  // --- introspection ----------------------------------------------------------

  /// True while the handle owns a transaction (begun, not yet moved
  /// away; it may already be finished or doomed).
  bool valid() const { return txn_ != nullptr; }

  /// True while operations can still be issued: valid, not finished by
  /// Commit/Abort, not doomed by a restore.
  bool active() const;

  /// True once a full-restore drain deadline force-aborted the
  /// transaction. Every operation returns kDoomed; begin a fresh
  /// transaction.
  bool doomed() const;

  /// Transaction id (0 for an empty handle).
  TxnId id() const;

  /// Classification of the most recent operation's outcome (including
  /// Get/Scan, whose return channel is Status-shaped).
  const TxnError& last_error() const { return last_error_; }

  /// Engine-internal escape hatch (tests, benches, recovery drills): the
  /// underlying transaction control block. Does NOT transfer ownership;
  /// a transaction finalized through the engine directly leaves the
  /// handle inert (its destructor sees the finished state and does
  /// nothing). Not part of the stable client API.
  Transaction* handle() const { return txn_.get(); }

 private:
  friend class Database;
  Txn(Database* db, std::shared_ptr<Transaction> txn)
      : db_(db), txn_(std::move(txn)) {}

  /// Classifies + records `status` and returns the classification.
  TxnError Finish(Status status);

  /// Destructor/move-assign body: auto-abort (or reap) an un-finished
  /// transaction, then drop the control-block reference.
  void Release();

  /// Shared guard: kUser error for ops on an empty/finished handle,
  /// kDoomed for a doomed one. Returns OK to proceed.
  TxnError CheckUsable();

  Database* db_ = nullptr;
  std::shared_ptr<Transaction> txn_;
  bool finished_ = false;  ///< Commit/Abort completed (or doomed observed)
  TxnError last_error_;
};

}  // namespace spf
