// StatsSnapshot: the one observability surface of a Database.
//
// Database::Stats() fills this struct from every counter-bearing component
// in one call — detection (buffer pool, cross-check), repair machinery
// (single-page recovery, scheduler), background healers (scrubber,
// failure funnel, gated-restore phase totals inside the funnel), and the
// hot-path concurrency layers (lock shards, group-commit log). Component
// accessors (funnel(), scrubber(), ...) remain for CONTROL (Start, Stop,
// WaitIdle, fault injection); counters all come from here, so a future
// network INFO command has a single source of truth.
//
// The struct is versioned: any field removal or meaning change bumps
// kVersion so external consumers (dashboards, the INFO command) can detect
// a mismatch instead of misreading counters.

#pragma once

#include <cstdint>

#include "buffer/buffer_pool.h"
#include "core/recovery_coordinator.h"
#include "core/recovery_scheduler.h"
#include "core/scrubber.h"
#include "core/single_page_recovery.h"
#include "log/log_archive.h"
#include "log/log_manager.h"
#include "txn/lock_manager.h"

namespace spf {

/// Counters of the network serving layer (src/server/). Filled in by
/// NetworkServer::Stats() — a snapshot taken through Database::Stats()
/// directly leaves the block zeroed (the engine does not know about the
/// server above it). Serialized verbatim by the INFO command.
struct ServerStats {
  uint64_t connections_accepted = 0;  ///< client connections accepted
  uint64_t connections_closed = 0;    ///< connections torn down (EOF, error, Stop)
  uint64_t frames_decoded = 0;        ///< well-formed frames dispatched
  uint64_t frames_rejected = 0;       ///< malformed frames answered with a protocol error
  uint64_t ops_served = 0;            ///< ops executed inside transaction frames
  uint64_t txns_committed = 0;        ///< transaction frames acked as committed
  uint64_t txns_failed = 0;           ///< transaction frames answered with a TxnError
  uint64_t info_requests = 0;         ///< INFO frames served
  /// Transaction frames whose Begin observed an active rung-5 restore
  /// protocol: the commit parked at the restore gate instead of failing.
  uint64_t gate_parked_commits = 0;
};

/// One-stop counter snapshot across the stack (Database::Stats()).
struct StatsSnapshot {
  /// Layout/meaning version of this struct; bumped on any incompatible
  /// change. v2 added the sorted-log-archive block (`archive`); v3 added
  /// the network-server block (`server`).
  static constexpr uint32_t kVersion = 3;
  uint32_t version = kVersion;

  BufferPoolStats pool;             ///< fixes, verify failures, repairs
  SinglePageRecoveryStats spr;      ///< per-page repair counters
  RecoverySchedulerStats scheduler; ///< batches, groups, segment fetches
  ScrubberTotals scrubber;          ///< sweeps, detections, reports
  /// Enqueue/coalesce/per-rung repairs; gated-restore phase totals
  /// (drained/doomed, segments, admission waits per restore) accumulate
  /// here too via NoteGatedRestore.
  FunnelTotals funnel;
  LockManagerStats locks;           ///< per-shard contention, aggregated
  /// Appends, forces, and the group-commit batch counters
  /// (group_commit_commits / group_commit_batches = mean group size).
  LogStats log;
  /// Sorted log archive: runs written/merged, archived bytes, merge-read
  /// pages, tail bytes scanned, log bytes made recyclable by the
  /// archive-truncation watermark, and the current watermark/run count.
  ArchiveStats archive;
  /// Admission waits parked at the restore gate since the last
  /// BuildVolatileState (covers the current/most recent restore).
  uint64_t restore_admission_waits = 0;
  uint64_t cross_checks = 0;            ///< PageLSN-vs-PRI comparisons run
  uint64_t cross_check_mismatches = 0;  ///< stale pages caught
  /// Network serving layer (zero unless the snapshot came through
  /// NetworkServer::Stats()): connections, frames decoded/rejected, ops
  /// served, commits parked on the restore gate.
  ServerStats server;
};

}  // namespace spf
