// TxnError — the structured error taxonomy of the v2 client API.
//
// The recovery engine heals most failures transparently (single-page
// repair, the failure funnel, the restore-gate protocol), so by the time
// an error reaches a client it falls into one of a handful of
// operationally distinct classes, and the single question a caller needs
// answered is "what do I do now?":
//
//   * retry the transaction  — lock conflicts and repair-in-progress
//     waits are transient: the same transaction logic succeeds when
//     re-run (TxnError::retryable() == true);
//   * re-begin               — the transaction was force-aborted by a
//     full-restore drain deadline (kDoomed): this handle is dead, but a
//     FRESH transaction will be admitted as soon as the restore-gate
//     readmits traffic;
//   * fix the request        — kUser errors (key not found, precondition
//     failed, invalid argument) never succeed on retry;
//   * escalate               — kStorage / kFatal errors escaped the
//     recovery ladder; retrying cannot help.
//
// A flat Status cannot express the first two distinctions (both surface
// as e.g. kAborted or kBusy), which is why Txn classifies every
// operation's outcome into a TxnError at the point where the context —
// was the handle doomed? is self-healing repair wired? — is known.

#pragma once

#include <string>

#include "common/status.h"

namespace spf {

/// Classified outcome of one operation on a Txn handle. Wraps the
/// underlying Status (implicitly convertible back to it, so existing
/// Status plumbing and SPF_CHECK_OK keep working) and adds the
/// retry-aware taxonomy the raw code cannot express.
class TxnError {
 public:
  /// The taxonomy. Ordered roughly by "how bad".
  enum class Kind : uint8_t {
    /// Success.
    kNone = 0,
    /// The request itself cannot succeed: key not found, insert of an
    /// existing key, invalid argument, operation on a finished handle.
    /// Retrying the identical request returns the identical error.
    kUser,
    /// Transient contention or repair-in-progress: lock timeout /
    /// deadlock victim, restore-gate or funnel backpressure. Re-running
    /// the transaction is expected to succeed — the only retryable kind.
    kTransient,
    /// The transaction was force-aborted by a full-restore drain
    /// deadline. The handle is permanently dead (every further call
    /// returns this), but the DATABASE is healing: begin a fresh
    /// transaction — it parks at the restore gate and is admitted as
    /// soon as the protocol readmits traffic.
    kDoomed,
    /// A page could not be read correctly and repair is not wired (or
    /// already failed): corruption, latent sector error, I/O error that
    /// escaped the recovery ladder. Not retryable from the client side.
    kStorage,
    /// The device failed as a whole and recovery did not (yet) succeed,
    /// or an internal invariant broke. Operator attention required.
    kFatal,
  };

  TxnError() = default;  ///< success (kNone / OK)

  /// Wraps an already-classified outcome.
  TxnError(Kind kind, Status status)
      : kind_(kind), status_(std::move(status)) {}

  /// Classifies a raw facade/engine Status. `doomed_handle` is the one
  /// context bit the code alone cannot carry (a doomed transaction and a
  /// finalization race both surface as kAborted); `repair_wired` decides
  /// whether a single-page-failure candidate is transient (the
  /// self-healing funnel repairs it; a retry rides the healed page) or
  /// terminal.
  static TxnError Classify(Status status, bool doomed_handle,
                           bool repair_wired) {
    if (status.ok()) return TxnError();
    Kind kind;
    switch (status.code()) {
      case Status::Code::kBusy:
      case Status::Code::kDeadlock:
        kind = Kind::kTransient;
        break;
      case Status::Code::kAborted:
        kind = doomed_handle ? Kind::kDoomed : Kind::kUser;
        break;
      case Status::Code::kCorruption:
      case Status::Code::kReadFailure:
        kind = repair_wired ? Kind::kTransient : Kind::kStorage;
        break;
      case Status::Code::kIOError:
        kind = Kind::kStorage;
        break;
      case Status::Code::kMediaFailure:
      case Status::Code::kInternal:
        kind = Kind::kFatal;
        break;
      default:  // kNotFound, kFailedPrecondition, kInvalidArgument, ...
        kind = Kind::kUser;
        break;
    }
    return TxnError(kind, std::move(status));
  }

  /// True on success (kNone).
  bool ok() const { return kind_ == Kind::kNone; }

  /// True when re-running the transaction is expected to succeed. This
  /// is the API contract heavy-traffic clients loop on: retryable errors
  /// are absorbed by a bounded retry, everything else surfaces.
  bool retryable() const { return kind_ == Kind::kTransient; }

  /// The classified kind.
  Kind kind() const { return kind_; }

  /// The underlying engine status (code + message).
  const Status& status() const { return status_; }

  /// Implicit view as the underlying Status, so TxnError drops into
  /// every existing Status sink (SPF_CHECK_OK, StatusOr plumbing, ...).
  operator Status() const { return status_; }  // NOLINT(runtime/explicit)

  /// Stable name of a kind ("TRANSIENT", "DOOMED", ...).
  static std::string_view KindName(Kind kind) {
    switch (kind) {
      case Kind::kNone:      return "OK";
      case Kind::kUser:      return "USER";
      case Kind::kTransient: return "TRANSIENT";
      case Kind::kDoomed:    return "DOOMED";
      case Kind::kStorage:   return "STORAGE";
      case Kind::kFatal:     return "FATAL";
    }
    return "?";
  }

  /// "<kind>[retryable]: <status>" rendering for logs and tests.
  std::string ToString() const {
    std::string out(KindName(kind_));
    if (retryable()) out += " (retryable)";
    if (!ok()) {
      out += ": ";
      out += status_.ToString();
    }
    return out;
  }

 private:
  Kind kind_ = Kind::kNone;
  Status status_;
};

}  // namespace spf
