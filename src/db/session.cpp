#include "db/session.h"

#include "db/database.h"
#include "txn/transaction.h"

namespace spf {

Txn& Txn::operator=(Txn&& other) noexcept {
  if (this != &other) {
    Release();  // auto-abort whatever this handle currently owns
    db_ = other.db_;
    txn_ = std::move(other.txn_);
    finished_ = other.finished_;
    last_error_ = other.last_error_;
    other.db_ = nullptr;
    other.txn_ = nullptr;
    other.finished_ = false;
  }
  return *this;
}

Txn::~Txn() { Release(); }

void Txn::Release() {
  if (txn_ == nullptr || db_ == nullptr) return;
  if (!finished_) {
    if (txn_->doomed()) {
      // The restore (or crash) owns this rollback unless it explicitly
      // deferred it to the owner — in which case dropping the handle is
      // the owner's last chance to run it. One-shot claims make the
      // reap a no-op everywhere else.
      db_->ReapDoomedTxn(txn_.get());
    } else if (txn_->state() == TxnState::kActive) {
      // RAII auto-abort: an un-finished transaction rolls back and
      // releases its locks. A rollback failure (device died mid-undo)
      // leaves the transaction for the next restore's doom phase, which
      // resumes the compensation via the CLR chain.
      (void)db_->AbortTxn(txn_.get());
    }
  }
  // Dropping txn_ releases the handle's share of the control block; the
  // TxnManager's active-table reference (if the transaction has not
  // retired yet) or this one — whichever dies last — frees the object.
  txn_ = nullptr;
  db_ = nullptr;
  finished_ = false;
}

TxnError Txn::CheckUsable() {
  if (txn_ == nullptr) {
    return TxnError(TxnError::Kind::kUser,
                    Status::FailedPrecondition("empty Txn handle"));
  }
  if (finished_) {
    if (txn_->doomed()) {
      // A doomed handle keeps reporting the forced abort, not a usage
      // error — the caller's re-begin logic keys off kDoomed.
      return TxnError(TxnError::Kind::kDoomed,
                      Status::Aborted("transaction was force-aborted by a "
                                      "full-restore drain deadline"));
    }
    return TxnError(TxnError::Kind::kUser,
                    Status::FailedPrecondition(
                        "transaction already committed or aborted"));
  }
  return TxnError();
}

TxnError Txn::Finish(Status status) {
  last_error_ = TxnError::Classify(std::move(status), txn_->doomed(),
                                   db_->repair_wired());
  return last_error_;
}

TxnError Txn::Put(std::string_view key, std::string_view value) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  return Finish(db_->PutOp(txn_.get(), key, value));
}

TxnError Txn::Insert(std::string_view key, std::string_view value) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  return Finish(db_->InsertOp(txn_.get(), key, value));
}

TxnError Txn::Update(std::string_view key, std::string_view value) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  return Finish(db_->UpdateOp(txn_.get(), key, value));
}

TxnError Txn::Delete(std::string_view key) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  return Finish(db_->DeleteOp(txn_.get(), key));
}

StatusOr<std::string> Txn::Get(std::string_view key) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) {
    last_error_ = guard;
    return guard.status();
  }
  StatusOr<std::string> value = db_->GetOp(txn_.get(), key);
  Finish(value.status());
  return value;
}

Status Txn::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) {
    last_error_ = guard;
    return guard.status();
  }
  return Finish(db_->ScanOp(txn_.get(), start, end, fn));
}

TxnError Txn::Apply(WriteBatch&& batch) {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  WriteBatch consumed = std::move(batch);
  TxnError err = Finish(db_->ApplyBatchOp(txn_.get(), consumed));
  if (txn_->state() != TxnState::kActive) {
    // The savepoint rollback itself failed and the batch had to take
    // the whole transaction down to preserve atomicity.
    finished_ = true;
  }
  return err;
}

TxnError Txn::Commit() {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  Status s = db_->CommitTxn(txn_.get());
  // Success and doomed both end the handle's life; there is no
  // commit outcome that leaves the transaction resumable.
  finished_ = true;
  return Finish(std::move(s));
}

TxnError Txn::Abort() {
  TxnError guard = CheckUsable();
  if (!guard.ok()) return last_error_ = guard;
  Status s = db_->AbortTxn(txn_.get());
  // A failed non-doomed abort (device dead mid-undo) stays un-finished:
  // the owner may retry (the CLR chain resumes where this attempt
  // stopped), and the destructor retries once more as a last resort.
  if (s.ok() || txn_->doomed()) finished_ = true;
  return Finish(std::move(s));
}

bool Txn::active() const {
  return txn_ != nullptr && !finished_ && !txn_->doomed() &&
         txn_->state() == TxnState::kActive;
}

bool Txn::doomed() const { return txn_ != nullptr && txn_->doomed(); }

TxnId Txn::id() const { return txn_ == nullptr ? 0 : txn_->id(); }

}  // namespace spf
