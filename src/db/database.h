// Database: the public facade assembling the full stack — simulated
// devices, recovery log, buffer pool, transactions, Foster B-tree, backup
// subsystem, page recovery index, single-page detection and recovery, and
// the restart / media recovery machinery.
//
// Typical use (the v2 client API — RAII handles, see db/session.h):
//
//   DatabaseOptions options;
//   auto db = Database::Create(options).value();
//   Txn txn = db->BeginTxn();
//   txn.Insert("key", "value");
//   txn.Commit();              // dropping an uncommitted txn auto-aborts
//
//   // Inject a single-page failure and watch it heal on the next read:
//   db->data_device()->InjectSilentCorruption(page_id);
//   db->Get("key");            // detected + repaired inline (Figure 8/10)
//
// Crash testing:
//
//   db->SimulateCrash();       // loses buffer pool + unforced log tail
//   db->Restart();             // ARIES analysis / redo / undo
//
// The v1 raw-pointer entry points (Begin() -> Transaction*, Commit(txn),
// Insert(txn, ...)) are gone: the one-release deprecation window closed
// and the shims were deleted. CI's deprecation firewall now fails on any
// reintroduced raw-pointer entry point, in src/db as well as in tests,
// examples, and benches.

#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "backup/backup_manager.h"
#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/sim_clock.h"
#include "common/sync.h"
#include "core/pri_manager.h"
#include "core/recovery_coordinator.h"
#include "core/recovery_scheduler.h"
#include "core/scrubber.h"
#include "core/single_page_recovery.h"
#include "db/session.h"
#include "db/stats_snapshot.h"
#include "db/txn_error.h"
#include "db/write_batch.h"
#include "log/log_archive.h"
#include "log/log_manager.h"
#include "log/log_source.h"
#include "recovery/checkpoint.h"
#include "recovery/media_recovery.h"
#include "recovery/restart_recovery.h"
#include "recovery/restore_gate.h"
#include "recovery/rollback.h"
#include "storage/allocation.h"
#include "storage/db_meta.h"
#include "storage/sim_device.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace spf {

/// Every tuning knob of a Database instance; see the README's options
/// reference table for the full knob/default/consumer matrix.
struct DatabaseOptions {
  uint32_t page_size = kDefaultPageSize;  ///< bytes per page
  uint64_t num_pages = 16384;  ///< 128 MiB at the default page size
  size_t buffer_frames = 1024;  ///< buffer-pool capacity in frames

  DeviceProfile data_profile = DeviceProfile::Ssd();      ///< data device timing
  DeviceProfile log_profile = DeviceProfile::Ssd();       ///< log device timing
  DeviceProfile backup_profile = DeviceProfile::Hdd100(); ///< backup device timing

  /// How completed writes are tracked (E4/E6 ablation axis).
  WriteTrackingMode tracking = WriteTrackingMode::kPri;
  /// When per-page backup copies / in-log images are taken.
  BackupPolicy backup_policy;

  /// In-page verification + PageLSN cross-check on every buffer fault.
  bool verify_on_read = true;
  /// Fence-key verification on every B-tree pointer traversal.
  bool verify_traversals = true;
  /// Online single-page repair (Figure 8). When false, a failed page read
  /// escalates straight to a media failure — the "traditional system"
  /// baseline of Figure 1.
  bool enable_single_page_repair = true;

  // --- recovery scheduler / scrubber knobs ------------------------------------

  /// Worker threads the RecoveryScheduler fans batched repairs out to
  /// (0 = repair inline on the requesting thread).
  uint32_t recovery_workers = 4;
  /// Coordinated batch repair: failed pages are grouped by backup source
  /// and overlapping log-chain ranges, and shared log segments are read
  /// once per batch instead of once per page. When false, a batch
  /// degrades to serial per-page repair (bench E8's baseline axis).
  bool batch_repair = true;
  /// Background scrubber cadence in SIMULATED time: a started scrubber
  /// (scrubber()->Start()) re-sweeps `scrub_pages_per_tick` pages whenever
  /// this much simulated time has passed. Zero ticks continuously.
  std::chrono::milliseconds scrub_interval{0};
  /// Background scrubber cadence in WALL-CLOCK time; overrides
  /// `scrub_interval` when nonzero. Use with Instant device profiles,
  /// where simulated time never advances and the simulated cadence would
  /// degrade to continuous ticking.
  std::chrono::milliseconds scrub_wall_interval{0};
  /// Page budget per background scrub tick (the incremental quantum).
  uint64_t scrub_pages_per_tick = 256;

  // --- failure funnel (self-healing) knobs ------------------------------------

  /// Automatic escalation through the failure funnel: the buffer pool's
  /// read path, background scrubber ticks, and batch-repair escalations
  /// all report damaged pages into the RecoveryCoordinator, whose worker
  /// drains them through the RecoverPages ladder — the system heals
  /// itself end to end with no caller involvement. When false, each
  /// detection site repairs inline and escalation beyond batched repair
  /// is the caller's job (the pre-funnel behavior). Only effective when
  /// single-page repair is wired (PRI tracking + enable_single_page_repair).
  bool auto_escalate = true;
  /// Worker threads draining the funnel. One maximizes batch coalescing.
  uint32_t funnel_workers = 1;
  /// Pending-queue bound of the funnel: reports beyond it are rejected
  /// (backpressure). A rejected scrubber report is re-detected on the
  /// next sweep; a rejected foreground reader repairs inline.
  uint64_t funnel_queue_limit = 1024;

  // --- full-restore gate (rung 5 under live traffic) ---------------------------

  /// Drain deadline of the restore-gate protocol: when a full restore
  /// starts, new transactions park at the admission gate and in-flight
  /// transactions get this much wall time to run to commit on their
  /// cached working sets. Stragglers still active at the deadline are
  /// force-aborted (the pre-gate abort-everything path, now a fallback
  /// branch; their handles stay valid but only ever return Aborted).
  std::chrono::milliseconds restore_drain_timeout{200};
  /// Pages per full-restore segment: the sweep restores the device in
  /// page-id segments of this size, publishing progress through the
  /// RestoreGate so parked readers resume as soon as THEIR segment is
  /// back. 0 restores the whole device as one segment (no incremental
  /// admission).
  uint64_t restore_segment_pages = 256;
  /// Early readmission: reopen the transaction admission gate as soon as
  /// the restore sweep starts (reads wait per page, hot pages restore on
  /// demand ahead of the sweep) instead of when the whole device is back.
  bool restore_early_admission = true;

  /// RecoverPages escalation policy: batches of at most this many pages
  /// are first attempted as coordinated single-page repairs (per-page
  /// backup sources); larger bounded batches go straight to partial media
  /// restore, whose sequential backup-range reads win once the damaged
  /// set is big enough. Pages single-page repair cannot handle (e.g. a
  /// lost backup reference) also escalate to partial restore. 0 routes
  /// every batch to partial restore directly.
  uint64_t spr_batch_limit = 64;

  // --- sorted log archive knobs -------------------------------------------------

  /// Target payload bytes per level-0 archive run: each archiver tick
  /// drains about this much durable log into one (page-id, LSN)-sorted
  /// run. Smaller runs archive sooner; larger runs merge less often.
  uint64_t archive_run_bytes = 256 * 1024;
  /// Background archiver cadence in WALL-CLOCK time (the log is a
  /// wall-clock artifact; there is no simulated-time variant). Zero ticks
  /// continuously while the archiver is started. The archiver never runs
  /// unless archiver()->Start() is called (or ArchiveAll() is driven by
  /// hand), so the default costs nothing.
  std::chrono::milliseconds archive_interval{0};
  /// Merge fan-in of the archive's compaction ladder: when a level
  /// accumulates this many runs, its oldest `archive_merge_fanin` runs
  /// merge into one run on the next level — run count stays O(log N).
  uint32_t archive_merge_fanin = 8;

  /// Lock-acquisition timeout before a transaction gives up (deadlock
  /// avoidance by timeout).
  std::chrono::milliseconds lock_timeout{200};

  // --- hot-path concurrency knobs ----------------------------------------------

  /// Shards of the lock manager's key table (per-shard mutex + wait list);
  /// disjoint-key writers on different shards never contend. 0 means 1.
  size_t lock_shards = 16;
  /// Shards of the buffer pool's page-table mapping (per-shard mutex over
  /// the id→frame map; frame latches are separate). 0 means 1.
  size_t pool_shards = 16;
  /// Group commit: the log drainer publishes+syncs a staged batch once it
  /// reaches this many bytes even with no committer waiting.
  uint64_t group_commit_bytes = 64 * 1024;
  /// Group commit linger: with committers waiting, the drainer holds the
  /// batch open this long (from the oldest waiter's arrival) so more
  /// commits can join one device sync. 0 syncs as soon as a waiter
  /// appears — the right default for single-threaded callers.
  std::chrono::microseconds group_commit_interval{0};
};

/// Which rung of the recovery ladder ultimately healed a RecoverPages
/// batch (in-place single-page repair → partial restore → full restore).
enum class RecoveryPath : uint8_t {
  kNone = 0,        ///< nothing to recover (empty batch / all dirty-skipped)
  kSinglePage,      ///< coordinated single-page repairs sufficed
  kPartialRestore,  ///< bounded media damage: partial restore-and-replay
  kFullRestore,     ///< unbounded (or unrepairable) damage: full restore
};

/// Outcome of one RecoverPages climb.
struct RecoverPagesResult {
  /// The rung that ultimately certified the batch.
  RecoveryPath path = RecoveryPath::kNone;
  /// Distinct pages in the request.
  uint64_t pages_requested = 0;
  /// Pages with a dirty buffered copy: nothing was lost, write-back will
  /// overwrite the device image, so they are not "damaged" at all.
  uint64_t skipped_dirty = 0;
  /// Pages healed by the coordinated single-page rung.
  uint64_t repaired_single_page = 0;
  /// Pages routed to partial restore (whole batch or single-page leftovers).
  uint64_t escalated_to_partial = 0;
  /// Populated when the partial- or full-restore rung ran.
  MediaRecoveryStats media;
};

/// One database instance over simulated storage. Thread-safe for
/// concurrent transactions; Create/SimulateCrash/Restart/RecoverMedia are
/// administrative and must not race data operations.
class Database {
 public:
  /// Builds the full stack over fresh simulated devices, formats the meta
  /// page, creates the B-tree, and takes the first checkpoint.
  static StatusOr<std::unique_ptr<Database>> Create(DatabaseOptions options);
  /// Stops the background components (scrubber, funnel) and tears down.
  ~Database();

  SPF_DISALLOW_COPY(Database);

  // --- transactions (v2: RAII handles) -----------------------------------------

  /// Starts a user transaction and returns the owning RAII handle:
  /// member Put/Get/Insert/Update/Delete/Scan/Apply/Commit, auto-abort
  /// on destruction, and the retry-aware TxnError taxonomy. Parks while
  /// a full restore holds the admission gate closed (with early
  /// admission, only until the restore sweep starts).
  Txn BeginTxn();

  // --- non-transactional reads --------------------------------------------------

  /// Unlocked point read (no transaction, no locks): sees the latest
  /// committed-or-in-flight value. Use Txn::Get for a locked read.
  StatusOr<std::string> Get(std::string_view key);
  /// Unlocked range scan: visits [start, end) in key order until `fn`
  /// returns false; an empty `end` means "to the last key". Use
  /// Txn::Scan for the locked, transaction-consistent variant.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>& fn);

  // --- operations ---------------------------------------------------------------

  /// Takes a fuzzy checkpoint (dirty pages, dirty PRI windows, active
  /// transactions, allocator + bad-block snapshots; master record).
  StatusOr<CheckpointStats> Checkpoint();
  /// Flushes everything and takes a full backup (media recovery baseline +
  /// PRI range compression).
  StatusOr<FullBackupInfo> TakeFullBackup();
  /// Writes every dirty buffered page back to the device.
  Status FlushAll() { return pool_->FlushAll(); }

  // --- failure & recovery ---------------------------------------------------------

  /// Simulated system failure: the buffer pool and all in-memory state
  /// vanish; the unforced log tail is lost. Outstanding Txn handles are
  /// doomed (every operation returns kDoomed; restart undo — not the
  /// handle — owns the rollback) and should be dropped. Follow with
  /// Restart().
  void SimulateCrash();

  /// ARIES restart recovery (analysis / redo / undo) + a fresh checkpoint.
  StatusOr<RestartStats> Restart();

  /// Full media recovery under the restore-gate protocol (rung 5 of the
  /// ladder, live-traffic safe): (1) gate — new transactions park at the
  /// TxnManager's admission gate; (2) drain — in-flight transactions run
  /// to commit on their cached working sets within
  /// `restore_drain_timeout`, stragglers are force-aborted (the old
  /// abort-everything behavior, now the fallback branch; their handles
  /// stay valid but return Aborted forever after); (3) restore — the
  /// device is restored from the latest full backup in
  /// `restore_segment_pages`-sized segments with per-segment log-chain
  /// replay, progress published through the RestoreGate; (4) readmit —
  /// with `restore_early_admission` the gate reopens at sweep start and a
  /// buffer fault waits only for ITS page's segment (restored on demand
  /// ahead of the sweep), otherwise at completion. Per-phase counters
  /// land in the returned stats' `phases` and in the funnel's totals.
  StatusOr<MediaRecoveryStats> RecoverMedia();

  /// Recovers an explicit damaged set by climbing the recovery ladder:
  /// batches of at most `spr_batch_limit` pages are repaired in place
  /// through the RecoveryScheduler (per-page backup sources); larger
  /// bounded batches — and pages single-page repair could not heal — go
  /// through partial media restore (sequential backup-range reads + one
  /// shared-segment chain replay, device online); only unbounded damage
  /// (the device failed as a whole, or partial restore itself failed)
  /// falls back to full restore-and-replay. Pages with a dirty buffered
  /// copy are skipped: nothing was lost, write-back overwrites the device
  /// image. This is also the ladder the failure funnel's worker drains
  /// into, so with auto_escalate on, calling it by hand is rarely needed;
  /// the page-wise rungs tolerate concurrent traffic, and the bottom
  /// (full-restore) rung runs the RecoverMedia restore-gate protocol —
  /// in-flight transactions drain to commit and traffic readmits while
  /// the restore sweep is still running.
  StatusOr<RecoverPagesResult> RecoverPages(std::vector<PageId> pages);

  /// Synchronous whole-database scrub: reads and verifies every allocated
  /// page against the device and repairs every detected single-page
  /// failure as ONE coordinated batch through the RecoveryScheduler
  /// ("disk scrubbing" with automatic repair). Thin wrapper over
  /// scrubber()->SweepAll(); use scrubber()->Start() for the incremental
  /// background variant.
  StatusOr<ScrubStats> Scrub();

  /// Batched repair of an explicit set of failed pages (multi-page
  /// failure bursts, escalation paths, benches). Pages the scheduler
  /// cannot repair are reported in the result, not thrown.
  StatusOr<BatchRepairResult> RepairPages(std::vector<PageId> pages);

  /// Offline verification utility (section 2 DBCC analog): reads every
  /// allocated page once directly from the device, verifies in-page
  /// invariants, then checks all B-tree invariants. Read-only; returns
  /// the first violation.
  Status CheckOffline(uint64_t* pages_checked);

  // --- introspection (benches, tests, examples) -----------------------------------

  SimClock* clock() { return &clock_; }                  ///< simulated clock
  SimDevice* data_device() { return data_.get(); }       ///< data device (fault injection)
  SimDevice* backup_device() { return backup_dev_.get(); }  ///< backup device
  SimLogDevice* log_device() { return wal_.get(); }      ///< log device
  LogManager* log() { return log_.get(); }               ///< recovery log
  BufferPool* pool() { return pool_.get(); }             ///< buffer pool
  BTree* tree() { return tree_.get(); }                  ///< Foster B-tree
  TxnManager* txns() { return txns_.get(); }             ///< transaction manager
  PageAllocator* allocator() { return alloc_.get(); }    ///< page allocator
  BadBlockList* bad_blocks() { return &bbl_; }           ///< retired locations
  BackupManager* backups() { return backups_.get(); }    ///< backup subsystem
  PriManager* pri_manager() { return pri_manager_.get(); }  ///< PRI maintenance
  PageRecoveryIndex* pri() { return pri_index_.get(); }  ///< the PRI itself
  SinglePageRecovery* single_page_recovery() { return spr_.get(); }  ///< per-page repair
  RecoveryScheduler* recovery_scheduler() { return scheduler_.get(); }  ///< batch repair
  Scrubber* scrubber() { return scrubber_.get(); }       ///< background scrubber
  /// The failure funnel; null when auto_escalate is off (or single-page
  /// repair is not wired).
  RecoveryCoordinator* funnel() { return funnel_.get(); }
  /// The sorted log archive (always wired; its background drain only runs
  /// between archiver()->Start()/Stop() or explicit ArchiveAll() calls).
  LogArchiver* archiver() { return archiver_.get(); }
  SimDevice* archive_device() { return archive_dev_.get(); }  ///< archive volume
  /// Restore-progress gate of the rung-5 protocol (always wired; active
  /// only while a full restore sweep runs).
  RestoreGate* restore_gate() { return restore_gate_.get(); }
  PageLsnCrossCheck* cross_check() { return cross_check_.get(); }  ///< read-time cross-check
  const DatabaseOptions& options() const { return options_; }  ///< effective options

  /// Aggregated counters across the whole stack in one versioned struct
  /// (pool, repair machinery, scrubber, funnel, lock shards, group-commit
  /// log, restore gate, cross-check). See db/stats_snapshot.h.
  StatsSnapshot Stats() const;

  /// Leaf page currently holding `key` (test/bench helper for targeting
  /// fault injection).
  StatusOr<PageId> LeafPageOf(std::string_view key);

  /// Moves a B-tree page's content to a freshly allocated location and
  /// retires the old one to the bad-block list (section 5.2.3: after
  /// recovering a failing location, "the page can be moved to a new
  /// location. The old, failed location can be ... registered in an
  /// appropriate data structure to prevent future use"). The Foster
  /// B-tree's single-incoming-pointer property makes this a one-pointer
  /// swap (section 5.1.3). The old page's retained image remains a valid
  /// backup source via the new page's format record. Returns the new page
  /// id. NotSupported for the root and for nodes with a foster child
  /// (adopt first).
  StatusOr<PageId> RelocatePage(PageId old_pid);

 private:
  friend class Txn;  // the RAII handle drives the *Op internals below

  explicit Database(DatabaseOptions options);

  /// Builds all volatile components (everything lost in a crash) and
  /// wires the hooks. Called at Create and again inside SimulateCrash.
  void BuildVolatileState();

  // --- v2 internals (driven by the Txn handle) ---------------------------------

  /// Begins a user transaction, returning its shared control block. The
  /// TxnManager's active table holds a second reference; whichever side
  /// lets go last frees the object — there is no zombie retention.
  std::shared_ptr<Transaction> BeginShared();
  Status CommitTxn(Transaction* txn);
  Status AbortTxn(Transaction* txn);
  Status InsertOp(Transaction* txn, std::string_view key, std::string_view value);
  Status UpdateOp(Transaction* txn, std::string_view key, std::string_view value);
  Status PutOp(Transaction* txn, std::string_view key, std::string_view value);
  /// Insert-or-update against the tree, outside any facade bracket —
  /// the single home of the upsert fallback rule (PutOp + batches).
  Status PutTree(Transaction* txn, std::string_view key, std::string_view value);
  Status DeleteOp(Transaction* txn, std::string_view key);
  StatusOr<std::string> GetOp(Transaction* txn, std::string_view key);
  Status ScanOp(Transaction* txn, std::string_view start, std::string_view end,
                const std::function<bool(std::string_view, std::string_view)>& fn);
  /// Applies the whole batch under ONE facade bracket; a mid-batch
  /// failure rolls the chain back to the pre-batch savepoint
  /// (RollbackExecutor::RollbackTo) and leaves the transaction active.
  Status ApplyBatchOp(Transaction* txn, const WriteBatch& batch);

  /// True when the self-healing read path is wired (PRI tracking +
  /// single-page repair): a single-page-failure candidate surfacing to a
  /// client is then transient — the funnel heals it, a retry rides the
  /// repaired page. Feeds TxnError::Classify.
  bool repair_wired() const {
    return options_.tracking == WriteTrackingMode::kPri &&
           options_.enable_single_page_repair;
  }

  Status Bootstrap();  // format meta page, create tree, first checkpoint

  /// Runs the deferred compensating rollback of a doomed straggler on
  /// the owner's thread, if this transaction still needs one (one-shot
  /// claim — never races the restore's own rollback phase). Called from
  /// every facade entry that observes a doomed handle and after every
  /// data operation, so a straggler whose in-flight operation outlived
  /// the restore's rollback deadline is compensated the moment that
  /// operation drains out of the facade.
  void ReapDoomedTxn(Transaction* txn);

  /// The facade bracket every data operation runs through: rejects
  /// doomed handles, counts the operation in flight on `txn` so a
  /// restore's rollback phase can see and wait out a straggler's last
  /// operation (Transaction::busy()), and reaps a deferred rollback on
  /// the way out. `fn` returns Status or StatusOr<...>. Defined in
  /// database.cpp (used only there).
  template <typename Fn>
  auto RunTxnOp(Transaction* txn, Fn&& fn) -> decltype(fn());

  DatabaseOptions options_;
  SimClock clock_;

  // Non-volatile: simulated devices survive crashes.
  std::unique_ptr<SimDevice> data_;
  std::unique_ptr<SimDevice> backup_dev_;
  std::unique_ptr<SimDevice> archive_dev_;  ///< sorted-run archive volume
  std::unique_ptr<SimLogDevice> wal_;
  BadBlockList bbl_;

  // Volatile: rebuilt by SimulateCrash + Restart.
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<PageAllocator> alloc_;
  std::unique_ptr<BackupManager> backups_;
  std::unique_ptr<RestoreGate> restore_gate_;
  std::unique_ptr<PageRecoveryIndex> pri_index_;
  std::unique_ptr<PriManager> pri_manager_;
  std::unique_ptr<SinglePageRecovery> spr_;
  std::unique_ptr<PageLsnCrossCheck> cross_check_;
  std::unique_ptr<BTree> tree_;
  // Declared after (so destroyed before) the components they drive; the
  // scrubber reports into the funnel, so it is destroyed first.
  std::unique_ptr<RecoveryScheduler> scheduler_;
  std::unique_ptr<RecoveryCoordinator> funnel_;
  std::unique_ptr<Scrubber> scrubber_;
  // The archiver drains log_, so it is declared after it (destroyed
  // first); the ArchiveLogSource is what spr_ reads archived history
  // through.
  std::unique_ptr<LogArchiver> archiver_;
  std::unique_ptr<ArchiveLogSource> log_source_;
  PriLayout layout_;
  // Serializes rung-5 climbs: a manual RecoverMedia must not overlap a
  // funnel-driven one (the RestoreGate supports one sweep at a time).
  // The generation counter lets a climb that blocked behind a completed
  // restore skip re-restoring a healthy device.
  OrderedMutex recover_media_mu_{LockRank::kRecoverMedia};
  std::atomic<uint64_t> restore_generation_{0};
  Lsn master_record_stash_ = kInvalidLsn;  // survives crash (stable storage)
};

}  // namespace spf
