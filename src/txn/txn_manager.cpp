#include "txn/txn_manager.h"

namespace spf {

Transaction* TxnManager::BeginInternal(bool system) {
  std::lock_guard<std::mutex> g(mu_);
  TxnId id = next_id_++;
  auto txn = std::make_unique<Transaction>(id, system);
  Transaction* ptr = txn.get();
  active_[id] = std::move(txn);
  if (system) {
    stats_.system_begun++;
  } else {
    stats_.user_begun++;
  }
  return ptr;
}

Transaction* TxnManager::Begin() { return BeginInternal(false); }

Transaction* TxnManager::BeginSystem() { return BeginInternal(true); }

Status TxnManager::Commit(Transaction* txn) {
  SPF_CHECK(txn->state() == TxnState::kActive);
  if (txn->last_lsn() != kInvalidLsn) {
    // Read-only transactions commit without logging anything.
    LogRecord commit;
    commit.type = LogRecordType::kCommitTxn;
    Lsn commit_lsn = txn->Log(log_, &commit);
    if (!txn->is_system()) {
      // Durability for user commits requires forcing the log
      // (section 5.1.5 / Figure 5). This also carries any earlier
      // unforced system-transaction commit records to stable storage.
      log_->Force(commit_lsn);
    }
  }
  txn->set_state(TxnState::kCommitted);
  {
    std::lock_guard<std::mutex> g(mu_);
    if (txn->is_system()) {
      stats_.system_committed++;
    } else {
      stats_.user_committed++;
    }
  }
  Retire(txn);
  return Status::OK();
}

Status TxnManager::BeginAbort(Transaction* txn) {
  SPF_CHECK(txn->state() == TxnState::kActive);
  if (txn->last_lsn() != kInvalidLsn) {
    LogRecord abort;
    abort.type = LogRecordType::kAbortTxn;
    txn->Log(log_, &abort);
    // Abort records need no force: if lost in a crash, restart undo rolls
    // the transaction back anyway.
  }
  return Status::OK();
}

void TxnManager::FinishAbort(Transaction* txn) {
  if (txn->last_lsn() != kInvalidLsn) {
    LogRecord end;
    end.type = LogRecordType::kEndTxn;
    txn->Log(log_, &end);
  }
  txn->set_state(TxnState::kAborted);
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!txn->is_system()) stats_.user_aborted++;
  }
  Retire(txn);
}

Transaction* TxnManager::AdoptLoser(TxnId id, Lsn last_lsn, Lsn undo_next) {
  std::lock_guard<std::mutex> g(mu_);
  auto txn = std::make_unique<Transaction>(id, /*is_system=*/false);
  // Reconstruct the chain head without logging.
  txn->set_state(TxnState::kActive);
  // The loser's chain is re-anchored via undo_next; last_lsn is used for
  // the Abort record's prev pointer. We emulate by direct assignment.
  Transaction* ptr = txn.get();
  active_[id] = std::move(txn);
  if (id >= next_id_) next_id_ = id + 1;
  ptr->set_undo_next_lsn(undo_next);
  ptr->RestoreChain(last_lsn);
  return ptr;
}

std::vector<ActiveTxnEntry> TxnManager::ActiveTxns() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<ActiveTxnEntry> out;
  for (const auto& [id, txn] : active_) {
    out.push_back({id, txn->last_lsn(), txn->is_system()});
  }
  return out;
}

size_t TxnManager::active_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return active_.size();
}

TxnId TxnManager::next_txn_id() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_id_;
}

void TxnManager::SetNextTxnId(TxnId id) {
  std::lock_guard<std::mutex> g(mu_);
  if (id > next_id_) next_id_ = id;
}

TxnStats TxnManager::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void TxnManager::Retire(Transaction* txn) {
  locks_->ReleaseAll(txn->id());
  std::lock_guard<std::mutex> g(mu_);
  active_.erase(txn->id());
}

}  // namespace spf
