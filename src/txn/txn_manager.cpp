#include "txn/txn_manager.h"

namespace spf {

std::shared_ptr<Transaction> TxnManager::BeginInternal(bool system) {
  UniqueLock g(mu_);
  if (!system && gate_closed_) {
    // Rung-5 quiesce: park at the admission gate until the restore
    // readmits (with early admission, as soon as the sweep starts).
    stats_.gate_parked++;
    while (gate_closed_) gate_cv_.wait(g);
  }
  TxnId id = next_id_++;
  auto txn = std::make_shared<Transaction>(id, system);
  active_[id] = txn;
  if (system) {
    stats_.system_begun++;
  } else {
    stats_.user_begun++;
  }
  return txn;
}

std::shared_ptr<Transaction> TxnManager::Begin() {
  return BeginInternal(false);
}

Transaction* TxnManager::BeginSystem() {
  // System transactions never span a call: the raw borrow is always
  // backed by the active table until the same call commits it.
  return BeginInternal(true).get();
}

Status TxnManager::Commit(Transaction* txn) {
  if (!txn->is_system() && !txn->TryClaimFinalize()) {
    // A restore drain deadline doomed this transaction before the commit
    // could claim it — the restore owns its rollback now, and committing
    // would log a commit record for updates the restore compensates.
    return Status::Aborted(
        "transaction was force-aborted by a full-restore drain deadline");
  }
  SPF_CHECK(txn->state() == TxnState::kActive);
  if (txn->last_lsn() != kInvalidLsn) {
    // Read-only transactions commit without logging anything.
    LogRecord commit;
    commit.type = LogRecordType::kCommitTxn;
    Lsn commit_lsn;
    {
      // Shared commit-gate section: the append and the finish-logged mark
      // are atomic with respect to a checkpoint's {snapshot + append}
      // exclusive section, so a checkpoint whose end record follows this
      // commit record never lists this transaction as active.
      ReaderLock gate(commit_gate_);
      commit_lsn = txn->Log(log_, &commit);
      txn->mark_finish_logged();
    }
    if (!txn->is_system()) {
      // Durability for user commits requires forcing the log
      // (section 5.1.5 / Figure 5). This also carries any earlier
      // unforced system-transaction commit records to stable storage.
      log_->Force(commit_lsn);
    }
  }
  txn->set_state(TxnState::kCommitted);
  {
    MutexLock g(mu_);
    if (txn->is_system()) {
      stats_.system_committed++;
    } else {
      stats_.user_committed++;
    }
  }
  Retire(txn);
  return Status::OK();
}

Status TxnManager::BeginAbort(Transaction* txn) {
  SPF_CHECK(txn->state() == TxnState::kActive);
  if (txn->last_lsn() != kInvalidLsn) {
    LogRecord abort;
    abort.type = LogRecordType::kAbortTxn;
    txn->Log(log_, &abort);
    // Abort records need no force: if lost in a crash, restart undo rolls
    // the transaction back anyway.
  }
  return Status::OK();
}

void TxnManager::FinishAbort(Transaction* txn) {
  if (txn->last_lsn() != kInvalidLsn) {
    LogRecord end;
    end.type = LogRecordType::kEndTxn;
    // Same commit-gate discipline as Commit: once the end record is in
    // the log, a later checkpoint must not list this transaction as
    // active (restart would re-undo an already-compensated chain).
    ReaderLock gate(commit_gate_);
    txn->Log(log_, &end);
    txn->mark_finish_logged();
  }
  txn->set_state(TxnState::kAborted);
  {
    MutexLock g(mu_);
    if (!txn->is_system()) stats_.user_aborted++;
  }
  Retire(txn);
}

Transaction* TxnManager::AdoptLoser(TxnId id, Lsn last_lsn, Lsn undo_next) {
  MutexLock g(mu_);
  auto txn = std::make_shared<Transaction>(id, /*is_system=*/false);
  // Reconstruct the chain head without logging.
  txn->set_state(TxnState::kActive);
  // The loser's chain is re-anchored via undo_next; last_lsn is used for
  // the Abort record's prev pointer. We emulate by direct assignment.
  Transaction* ptr = txn.get();
  active_[id] = std::move(txn);
  if (id >= next_id_) next_id_ = id + 1;
  ptr->set_undo_next_lsn(undo_next);
  ptr->RestoreChain(last_lsn);
  return ptr;
}

void TxnManager::CloseGate() {
  MutexLock g(mu_);
  gate_closed_ = true;
}

void TxnManager::OpenGate() {
  {
    MutexLock g(mu_);
      gate_closed_ = false;
  }
  gate_cv_.notify_all();
}

bool TxnManager::gate_closed() const {
  MutexLock g(mu_);
  return gate_closed_;
}

size_t TxnManager::ActiveUserCountLocked() const {
  size_t n = 0;
  for (const auto& [id, txn] : active_) {
    if (!txn->is_system()) n++;
  }
  return n;
}

size_t TxnManager::ActiveUserCount() const {
  MutexLock g(mu_);
  return ActiveUserCountLocked();
}

size_t TxnManager::WaitForUserDrain(std::chrono::milliseconds timeout) {
  UniqueLock g(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (ActiveUserCountLocked() != 0 &&
         drain_cv_.wait_until(g, deadline) != std::cv_status::timeout) {
  }
  return ActiveUserCountLocked();
}

std::vector<std::shared_ptr<Transaction>> TxnManager::DoomActiveUserTxns() {
  MutexLock g(mu_);
  std::vector<std::shared_ptr<Transaction>> doomed;
  for (const auto& [id, txn] : active_) {
    if (txn->is_system()) continue;
    if (txn->TryDoom()) {
      doomed.push_back(txn);
      stats_.doomed++;
    } else if (txn->doomed()) {
      // Doomed by an earlier restore whose sweep then failed before the
      // fallback rollback ran: still active, still the restore's to roll
      // back — hand it to this attempt too.
      doomed.push_back(txn);
    }
    // A failed TryDoom on a non-doomed transaction means the owner's
    // commit/abort claimed it first; it finalizes normally.
  }
  return doomed;
}

void TxnManager::DoomAllForCrash() {
  MutexLock g(mu_);
  for (const auto& [id, txn] : active_) {
    if (txn->is_system()) continue;
    if (txn->TryDoom()) stats_.doomed++;
    // Restart undo owns the compensation (it replays the LOG); claiming
    // the rollback here makes every handle-side reap a no-op.
    (void)txn->TryClaimRollback();
  }
}

std::vector<ActiveTxnEntry> TxnManager::ActiveTxns() const {
  MutexLock g(mu_);
  std::vector<ActiveTxnEntry> out;
  for (const auto& [id, txn] : active_) {
    // A transaction whose finish record is already in the log is done as
    // far as recovery is concerned; it merely has not retired from the
    // table yet (commit is still waiting on the group-commit force, or
    // the aborter is releasing locks). Listing it would seed it as a
    // restart loser and undo a committed transaction.
    if (txn->finish_logged()) continue;
    out.push_back({id, txn->last_lsn(), txn->is_system()});
  }
  return out;
}

size_t TxnManager::active_count() const {
  MutexLock g(mu_);
  return active_.size();
}

TxnId TxnManager::next_txn_id() const {
  MutexLock g(mu_);
  return next_id_;
}

void TxnManager::SetNextTxnId(TxnId id) {
  MutexLock g(mu_);
  if (id > next_id_) next_id_ = id;
}

TxnStats TxnManager::stats() const {
  MutexLock g(mu_);
  return stats_;
}

void TxnManager::Retire(Transaction* txn) {
  locks_->ReleaseAll(txn->id());
  std::shared_ptr<Transaction> dropped;
  {
    MutexLock g(mu_);
    auto it = active_.find(txn->id());
    if (it != active_.end()) {
      // Move the table's reference out so a last-reference destruction
      // happens outside the lock. An owner still holding a handle (e.g.
      // to a doomed straggler) keeps the object alive on its own — the
      // shared control block replaces the old zombie-retention scheme.
      dropped = std::move(it->second);
      active_.erase(it);
    }
  }
  drain_cv_.notify_all();
}

}  // namespace spf
