// Transaction manager: lifecycle, commit protocols, active-txn table.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "log/log_manager.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace spf {

/// Snapshot row of the active-transaction table (checkpoint payload and
/// restart analysis seed).
struct ActiveTxnEntry {
  TxnId txn_id;
  Lsn last_lsn;
  bool is_system;
};

struct TxnStats {
  uint64_t user_begun = 0;
  uint64_t user_committed = 0;
  uint64_t user_aborted = 0;
  uint64_t system_begun = 0;
  uint64_t system_committed = 0;
};

/// Creates, commits, and finalizes transactions. Rollback is executed by
/// the recovery module (it owns undo); TxnManager provides the hooks the
/// roll-back executor needs (FinishAbort).
class TxnManager {
 public:
  TxnManager(LogManager* log, LockManager* locks) : log_(log), locks_(locks) {}

  SPF_DISALLOW_COPY(TxnManager);

  /// Begins a user transaction. A Begin record is logged lazily — the
  /// first update record identifies the transaction; pure readers leave no
  /// trace in the log.
  Transaction* Begin();

  /// Begins a system transaction (section 5.1.5): no locks, unforced commit.
  Transaction* BeginSystem();

  /// Commits: logs the commit record; forces the log for user
  /// transactions, not for system transactions (Figure 5); releases locks;
  /// retires the transaction object.
  Status Commit(Transaction* txn);

  /// Marks the abort decision and logs the abort record. The caller must
  /// then run the undo executor and finally call FinishAbort.
  Status BeginAbort(Transaction* txn);

  /// Releases locks and retires an aborted transaction after undo
  /// completed.
  void FinishAbort(Transaction* txn);

  /// Restores a transaction discovered during restart log analysis as
  /// in-flight at the crash (a "loser" to be rolled back).
  Transaction* AdoptLoser(TxnId id, Lsn last_lsn, Lsn undo_next);

  /// Snapshot of active transactions (checkpoint payload).
  std::vector<ActiveTxnEntry> ActiveTxns() const;

  size_t active_count() const;

  /// Highest txn id handed out; checkpointed so restart continues the
  /// sequence without reuse.
  TxnId next_txn_id() const;
  void SetNextTxnId(TxnId id);

  TxnStats stats() const;
  LockManager* lock_manager() { return locks_; }
  LogManager* log() { return log_; }

 private:
  Transaction* BeginInternal(bool system);
  void Retire(Transaction* txn);

  LogManager* const log_;
  LockManager* const locks_;

  mutable std::mutex mu_;
  TxnId next_id_ = 1;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_;
  TxnStats stats_;
};

}  // namespace spf
