// Transaction manager: lifecycle, commit protocols, active-txn table, and
// the full-restore admission gate (quiesce → drain → doom → readmit).

#pragma once

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"
#include "common/status.h"
#include "log/log_manager.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace spf {

/// Snapshot row of the active-transaction table (checkpoint payload and
/// restart analysis seed).
struct ActiveTxnEntry {
  TxnId txn_id;    ///< transaction identifier
  Lsn last_lsn;    ///< head of the per-transaction log chain
  bool is_system;  ///< system transaction (section 5.1.5)?
};

/// Lifetime counters (TxnManager::stats()).
struct TxnStats {
  uint64_t user_begun = 0;        ///< user transactions started
  uint64_t user_committed = 0;    ///< user transactions committed
  uint64_t user_aborted = 0;      ///< user transactions rolled back
  uint64_t system_begun = 0;      ///< system transactions started
  uint64_t system_committed = 0;  ///< system transactions committed
  uint64_t gate_parked = 0;       ///< Begins that parked at a closed gate
  uint64_t doomed = 0;            ///< stragglers force-aborted by a drain deadline
};

/// Creates, commits, and finalizes transactions. Rollback is executed by
/// the recovery module (it owns undo); TxnManager provides the hooks the
/// roll-back executor needs (FinishAbort).
///
/// For rung 5 of the recovery ladder (full media restore under live
/// traffic) the manager doubles as the transactional quiesce point:
/// CloseGate() parks new user transactions at the admission gate,
/// WaitForUserDrain() lets in-flight transactions run to commit on their
/// cached working sets up to a bounded deadline, DoomActiveUserTxns()
/// force-aborts the stragglers (the pre-gate abort-everything path, now a
/// fallback branch), and OpenGate() readmits — with early admission,
/// while the restore sweep is still running.
class TxnManager {
 public:
  /// `log` and `locks` are borrowed for the manager's lifetime.
  TxnManager(LogManager* log, LockManager* locks) : log_(log), locks_(locks) {}

  SPF_DISALLOW_COPY(TxnManager);

  /// Begins a user transaction, returning its shared control block: the
  /// active table holds one reference, the caller (normally a Txn
  /// handle) the other, and whichever side lets go last frees the
  /// object. A handle that outlives the engine-side retirement — e.g. a
  /// transaction force-aborted by a restore's drain deadline — therefore
  /// reads live memory with no zombie-retention scheme behind it. A
  /// Begin record is logged lazily — the first update record identifies
  /// the transaction; pure readers leave no trace in the log. Parks
  /// (blocks) while the admission gate is closed.
  std::shared_ptr<Transaction> Begin();

  /// Begins a system transaction (section 5.1.5): no locks, unforced
  /// commit, never parked at the admission gate (system transactions are
  /// contents-neutral and never span user interaction).
  Transaction* BeginSystem();

  /// Commits: logs the commit record; forces the log for user
  /// transactions, not for system transactions (Figure 5); releases locks;
  /// retires the transaction object.
  Status Commit(Transaction* txn);

  /// Marks the abort decision and logs the abort record. The caller must
  /// then run the undo executor and finally call FinishAbort.
  Status BeginAbort(Transaction* txn);

  /// Releases locks and retires an aborted transaction after undo
  /// completed.
  void FinishAbort(Transaction* txn);

  /// Restores a transaction discovered during restart log analysis as
  /// in-flight at the crash (a "loser" to be rolled back).
  Transaction* AdoptLoser(TxnId id, Lsn last_lsn, Lsn undo_next);

  // --- full-restore admission gate -------------------------------------------

  /// Closes the admission gate: subsequent user Begin() calls park until
  /// OpenGate(). Idempotent.
  void CloseGate();

  /// Reopens the admission gate and releases every parked Begin().
  /// Idempotent.
  void OpenGate();

  /// True between CloseGate and OpenGate.
  bool gate_closed() const;

  /// Active USER transactions (system transactions never outlive one call
  /// and are not drained).
  size_t ActiveUserCount() const;

  /// Drain phase: blocks until no user transaction is active or `timeout`
  /// wall time elapsed, whichever is first. Returns the number of user
  /// transactions still active (0 = fully drained). Call with the gate
  /// closed, or new transactions keep the count alive.
  size_t WaitForUserDrain(std::chrono::milliseconds timeout);

  /// Fallback-abort phase: dooms every still-active user transaction and
  /// returns their control blocks for the caller (the restore) to roll
  /// back after the replay — the returned references keep the objects
  /// alive through that loop even if the owners drop their handles
  /// concurrently. A transaction whose owner already claimed
  /// finalization (a commit/abort in flight) is left alone and completes
  /// normally; a transaction doomed by an earlier restore whose rollback
  /// never ran (the sweep failed) is re-collected. A doomed
  /// transaction's handle stays valid for as long as the owner holds it
  /// (shared ownership), but only ever reports Aborted/kDoomed again.
  std::vector<std::shared_ptr<Transaction>> DoomActiveUserTxns();

  /// Crash semantics (Database::SimulateCrash): dooms every active user
  /// transaction so stale handles report kDoomed instead of touching
  /// rebuilt state, and pre-claims their rollbacks — after a crash the
  /// compensation belongs to restart undo (driven by the LOG), never to
  /// a handle or a restore.
  void DoomAllForCrash();

  /// Snapshot of active transactions (checkpoint payload). Excludes
  /// transactions whose finish record (commit, or an abort's end) is
  /// already in the log — seeding those as restart losers would undo a
  /// committed transaction. Call under LockCommitsForCheckpoint() when
  /// the snapshot must be ordered against a log append (see below).
  std::vector<ActiveTxnEntry> ActiveTxns() const;

  /// Commit-gate exclusive section for checkpoints. Finish-record appends
  /// (Commit's kCommitTxn, FinishAbort's kEndTxn) run inside a SHARED
  /// section of this gate and mark the transaction finish-logged before
  /// leaving it. A checkpoint holds the EXCLUSIVE section across
  /// {ActiveTxns snapshot + kCheckpointEnd append}, which makes snapshot
  /// visibility agree with log order: a finish record ordered before the
  /// checkpoint-end record is always visible to the snapshot (its
  /// transaction is excluded), and one ordered after is not (its
  /// transaction appears in the table and analysis erases it when the
  /// scan reaches the finish record). Without this ordering, restart
  /// analysis can resurrect a committed transaction from a checkpoint's
  /// txn table and roll back acknowledged writes.
  WriterLock LockCommitsForCheckpoint() {
    return WriterLock(commit_gate_);
  }

  /// Number of transactions in the active table (user + system).
  size_t active_count() const;

  /// Highest txn id handed out; checkpointed so restart continues the
  /// sequence without reuse.
  TxnId next_txn_id() const;
  /// Restores the id sequence from a checkpoint image.
  void SetNextTxnId(TxnId id);

  /// Lifetime counters snapshot.
  TxnStats stats() const;
  /// The lock manager user transactions acquire through.
  LockManager* lock_manager() { return locks_; }
  /// The recovery log commits force.
  LogManager* log() { return log_; }

 private:
  std::shared_ptr<Transaction> BeginInternal(bool system);
  void Retire(Transaction* txn);
  size_t ActiveUserCountLocked() const SPF_REQUIRES(mu_);

  LogManager* const log_;
  LockManager* const locks_;

  mutable OrderedMutex mu_{LockRank::kTxnTable};
  /// Orders finish-record appends against checkpoint snapshots — see
  /// LockCommitsForCheckpoint(). Ranked BELOW the txn table and the log:
  /// the B-tree commits system transactions while still holding page
  /// latches, so the gate nests between frame latches and everything else.
  mutable OrderedSharedMutex commit_gate_{LockRank::kCommitGate};
  CondVar gate_cv_;   ///< wakes parked Begins (gate opened)
  CondVar drain_cv_;  ///< wakes WaitForUserDrain (retirements)
  bool gate_closed_ SPF_GUARDED_BY(mu_) = false;
  TxnId next_id_ SPF_GUARDED_BY(mu_) = 1;
  /// Shared control blocks: retirement drops the table's reference; any
  /// outstanding owner handle keeps the object alive on its own.
  std::unordered_map<TxnId, std::shared_ptr<Transaction>> active_
      SPF_GUARDED_BY(mu_);
  TxnStats stats_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
