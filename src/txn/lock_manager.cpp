#include "txn/lock_manager.h"

namespace spf {

bool LockManager::Compatible(const LockState& s, TxnId txn, LockMode mode) {
  for (const auto& [holder, held_mode] : s.holders) {
    if (holder == txn) continue;  // self-compatibility handled by caller
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Lock(TxnId txn, const std::string& key, LockMode mode) {
  Shard& sh = ShardFor(key);
  UniqueLock lock(sh.mu);
  LockState& s = sh.locks[key];

  auto self = s.holders.find(txn);
  if (self != s.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already strong enough
    }
    // Upgrade request: falls through to the wait loop; Compatible() ignores
    // our own shared hold.
  }

  auto deadline = std::chrono::steady_clock::now() + timeout_;
  s.waiters++;
  bool waited = false;
  while (!Compatible(s, txn, mode)) {
    waited = true;
    if (sh.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      s.waiters--;
      sh.timeouts++;
      if (waited) sh.waits++;
      if (s.holders.empty() && s.waiters == 0) sh.locks.erase(key);
      return Status::Deadlock("lock wait timeout on key '" + key + "'");
    }
  }
  s.waiters--;
  s.holders[txn] = mode;
  sh.acquisitions++;
  if (waited) sh.waits++;
  return Status::OK();
}

void LockManager::Unlock(TxnId txn, const std::string& key) {
  Shard& sh = ShardFor(key);
  MutexLock g(sh.mu);
  auto it = sh.locks.find(key);
  if (it == sh.locks.end()) return;
  it->second.holders.erase(txn);
  if (it->second.holders.empty() && it->second.waiters == 0) {
    sh.locks.erase(it);
  }
  sh.cv.notify_all();
}

void LockManager::ReleaseAll(TxnId txn) {
  for (Shard& sh : shards_) {
    MutexLock g(sh.mu);
    bool released = false;
    for (auto it = sh.locks.begin(); it != sh.locks.end();) {
      released |= it->second.holders.erase(txn) > 0;
      if (it->second.holders.empty() && it->second.waiters == 0) {
        it = sh.locks.erase(it);
      } else {
        ++it;
      }
    }
    if (released) sh.cv.notify_all();
  }
}

bool LockManager::IsLocked(const std::string& key) const {
  Shard& sh = ShardFor(key);
  MutexLock g(sh.mu);
  auto it = sh.locks.find(key);
  return it != sh.locks.end() && !it->second.holders.empty();
}

bool LockManager::Holds(TxnId txn, const std::string& key,
                        LockMode mode) const {
  Shard& sh = ShardFor(key);
  MutexLock g(sh.mu);
  auto it = sh.locks.find(key);
  if (it == sh.locks.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

uint64_t LockManager::timeouts() const {
  uint64_t total = 0;
  for (const Shard& sh : shards_) {
    MutexLock g(sh.mu);
    total += sh.timeouts;
  }
  return total;
}

LockManagerStats LockManager::stats() const {
  LockManagerStats out;
  for (const Shard& sh : shards_) {
    MutexLock g(sh.mu);
    out.acquisitions += sh.acquisitions;
    out.waits += sh.waits;
    out.timeouts += sh.timeouts;
    out.keys_tracked += sh.locks.size();
  }
  return out;
}

}  // namespace spf
