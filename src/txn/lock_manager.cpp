#include "txn/lock_manager.h"

namespace spf {

bool LockManager::Compatible(const LockState& s, TxnId txn,
                             LockMode mode) const {
  for (const auto& [holder, held_mode] : s.holders) {
    if (holder == txn) continue;  // self-compatibility handled by caller
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Lock(TxnId txn, const std::string& key, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  LockState& s = locks_[key];

  auto self = s.holders.find(txn);
  if (self != s.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already strong enough
    }
    // Upgrade request: falls through to the wait loop; Compatible() ignores
    // our own shared hold.
  }

  auto deadline = std::chrono::steady_clock::now() + timeout_;
  s.waiters++;
  while (!Compatible(s, txn, mode)) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      s.waiters--;
      timeouts_++;
      if (s.holders.empty() && s.waiters == 0) locks_.erase(key);
      return Status::Deadlock("lock wait timeout on key '" + key + "'");
    }
  }
  s.waiters--;
  s.holders[txn] = mode;
  return Status::OK();
}

void LockManager::Unlock(TxnId txn, const std::string& key) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  it->second.holders.erase(txn);
  if (it->second.holders.empty() && it->second.waiters == 0) {
    locks_.erase(it);
  }
  cv_.notify_all();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.holders.erase(txn);
    if (it->second.holders.empty() && it->second.waiters == 0) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

bool LockManager::IsLocked(const std::string& key) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = locks_.find(key);
  return it != locks_.end() && !it->second.holders.empty();
}

bool LockManager::Holds(TxnId txn, const std::string& key,
                        LockMode mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

}  // namespace spf
