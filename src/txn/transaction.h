// Transaction objects: user transactions and system transactions.
//
// The paper (section 5.1.5, Figure 5) separates changes to logical database
// contents (user transactions) from contents-neutral changes to their
// representation (system transactions: node splits, ghost reclamation,
// page migration, PRI maintenance). The operational differences modeled
// here:
//   * a user commit forces the log; a system commit does not — its commit
//     record reaches stable storage with (or before) the next forced write,
//     and a lost system transaction cannot lose data because it is
//     contents-neutral;
//   * system transactions acquire no locks (latches suffice);
//   * system transactions never span user interaction — they begin and
//     commit within one call.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>

#include "common/macros.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "storage/page.h"

namespace spf {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// One transaction's bookkeeping: identity, state, and the head of its
/// per-transaction log chain (section 5.1.1).
class Transaction {
 public:
  Transaction(TxnId id, bool is_system) : id_(id), system_(is_system) {}

  SPF_DISALLOW_COPY(Transaction);

  TxnId id() const { return id_; }
  bool is_system() const { return system_; }
  TxnState state() const { return state_; }
  Lsn first_lsn() const { return first_lsn_; }
  Lsn last_lsn() const { return last_lsn_; }

  /// During rollback: the next record to undo. Starts at last_lsn and is
  /// moved backward by compensation records' undo_next_lsn.
  Lsn undo_next_lsn() const { return undo_next_lsn_; }
  void set_undo_next_lsn(Lsn lsn) { undo_next_lsn_ = lsn; }

  /// True once a full-restore drain deadline (or a simulated crash)
  /// force-aborted this transaction (TxnManager::DoomActiveUserTxns /
  /// DoomAllForCrash). The restore rolls the transaction back on its own
  /// thread afterwards; the owner's Txn handle stays readable for as
  /// long as it is held — the transaction object is a control block
  /// shared between the handle and the manager's active table — but
  /// every operation on it reports kDoomed/Aborted. Dropping the handle
  /// frees the owner's share; no zombie retention is involved.
  bool doomed() const { return fate_.load() == kFateDoomed; }

  /// Claims the transaction for owner-driven finalization (commit or
  /// explicit abort). Exactly one of {finalize, doom} wins: once claimed,
  /// a drain deadline can no longer doom the transaction, and once
  /// doomed, commit/abort return Aborted instead of racing the restore's
  /// rollback. Returns false when the doom won.
  bool TryClaimFinalize() {
    uint8_t expected = kFateOpen;
    return fate_.compare_exchange_strong(expected, kFateFinalizing);
  }

  /// Dooms the transaction (restore drain deadline). Fails — and leaves
  /// the transaction alone — when the owner already claimed finalization
  /// (a commit or abort is in flight and will complete normally).
  bool TryDoom() {
    uint8_t expected = kFateOpen;
    return fate_.compare_exchange_strong(expected, kFateDoomed);
  }

  /// Releases a TryClaimFinalize claim after the finalization FAILED
  /// mid-way (e.g. an abort's rollback hit a dead device): the owner may
  /// retry, or a later restore's doom phase picks the transaction up and
  /// compensates it. No-op unless currently claimed.
  void RevertFinalizeClaim() {
    uint8_t expected = kFateFinalizing;
    fate_.compare_exchange_strong(expected, kFateOpen);
  }

  /// One-shot claim for executing a DOOMED transaction's compensating
  /// rollback. Two agents may want it: the dooming restore's rollback
  /// phase (once the transaction is no longer busy()), and the owner's
  /// own thread when its last in-flight operation drains out of the
  /// facade after the restore deferred the rollback
  /// (Database::ReapDoomedTxn). Exactly one wins, so concurrent undo of
  /// the same chain is impossible. Returns false when already claimed.
  bool TryClaimRollback() {
    bool expected = false;
    return rollback_claimed_.compare_exchange_strong(expected, true);
  }

  /// Releases a TryClaimRollback claim after the rollback FAILED mid-way
  /// (e.g. the device died again mid-undo): the next restore's doom
  /// phase — or the owner's next facade call — re-claims and resumes
  /// (CLR chains skip what this attempt already undid). No-op unless
  /// currently claimed.
  void RevertRollbackClaim() { rollback_claimed_.store(false); }

  /// Marks that this transaction's finish record (kCommitTxn, or the
  /// kEndTxn closing an abort) has been appended to the log. Set inside
  /// the TxnManager commit gate's shared section, so a checkpoint's
  /// exclusive {snapshot + append} section observes it for exactly the
  /// transactions whose finish record precedes the checkpoint-end record
  /// in the log. ActiveTxns() excludes marked transactions from the
  /// checkpoint's txn table: they are finished as far as the log is
  /// concerned (the checkpoint forces the log past their finish record
  /// before publishing the master record), and seeding them as restart
  /// losers would roll back a committed transaction.
  void mark_finish_logged() { finish_logged_.store(true); }
  /// True once the finish record has been appended (see above).
  bool finish_logged() const { return finish_logged_.load(); }

  /// Facade-operation bracket: the database facade counts every data
  /// operation run on this transaction so the restore's fallback
  /// rollback can wait out an operation that was already executing when
  /// the drain deadline fired, instead of racing it. Sequentially
  /// consistent (as are the fate accessors): the facade's
  /// {BeginOp; doomed?} handshake against the restore's
  /// {TryDoom; busy?} must not allow BOTH sides to read the stale value
  /// (the classic store-buffer outcome under weaker orderings), or an
  /// operation invisible to busy() could run forward while the restore
  /// rolls the same chain back.
  void BeginOp() { ops_in_flight_.fetch_add(1); }
  /// Closes a BeginOp bracket.
  void EndOp() { ops_in_flight_.fetch_sub(1); }
  /// True while a facade operation is executing on this transaction.
  bool busy() const { return ops_in_flight_.load() > 0; }

  /// Appends a record on this transaction's behalf: stamps txn id, the
  /// per-transaction chain pointer, and the system-transaction flag, then
  /// advances the chain head.
  Lsn Log(LogManager* log, LogRecord* rec) {
    Stamp(rec);
    Lsn lsn = log->Append(rec);
    Advance(lsn);
    return lsn;
  }

  /// Like Log() but for records that modify a page: additionally maintains
  /// the page's per-page chain and PageLSN via AppendPageRecord.
  Lsn LogPage(LogManager* log, LogRecord* rec, PageView page) {
    Stamp(rec);
    Lsn lsn = log->AppendPageRecord(rec, page);
    Advance(lsn);
    return lsn;
  }

  void set_state(TxnState s) { state_ = s; }

  /// Restart-recovery hook: re-anchors the chain head of a loser
  /// transaction reconstructed during log analysis, without logging.
  void RestoreChain(Lsn last_lsn) {
    last_lsn_ = last_lsn;
    if (first_lsn_ == kInvalidLsn) first_lsn_ = last_lsn;
  }

  /// Keys locked by this transaction (user transactions only), released at
  /// commit/abort by the transaction manager.
  std::unordered_set<std::string>& locked_keys() { return locked_keys_; }

 private:
  void Stamp(LogRecord* rec) {
    SPF_CHECK(state_ == TxnState::kActive) << "logging on finished txn";
    rec->txn_id = id_;
    rec->prev_lsn = last_lsn_;
    if (system_) rec->flags |= kLogFlagSystemTxn;
  }
  void Advance(Lsn lsn) {
    if (first_lsn_ == kInvalidLsn) first_lsn_ = lsn;
    last_lsn_ = lsn;
    undo_next_lsn_ = lsn;
  }

  // One-shot finalization claim: open until either the owner's
  // commit/abort (kFateFinalizing) or a restore drain deadline
  // (kFateDoomed) wins the CAS.
  static constexpr uint8_t kFateOpen = 0;
  static constexpr uint8_t kFateFinalizing = 1;
  static constexpr uint8_t kFateDoomed = 2;

  const TxnId id_;
  const bool system_;
  std::atomic<uint8_t> fate_{kFateOpen};
  std::atomic<bool> rollback_claimed_{false};
  std::atomic<bool> finish_logged_{false};
  std::atomic<uint32_t> ops_in_flight_{0};
  TxnState state_ = TxnState::kActive;
  Lsn first_lsn_ = kInvalidLsn;
  Lsn last_lsn_ = kInvalidLsn;
  Lsn undo_next_lsn_ = kInvalidLsn;
  std::unordered_set<std::string> locked_keys_;
};

}  // namespace spf
