// Key-value lock manager for user transactions.
//
// Exclusive and shared locks on B-tree keys, FIFO-fair waiting with a
// timeout: a transaction that waits longer than the configured bound is
// treated as deadlocked and receives Status::Deadlock, which the caller
// turns into a transaction failure (rollback) — the cheapest of the
// paper's failure classes and the baseline for experiment E1.
//
// The lock table is sharded by key hash so disjoint-key writers never
// touch the same mutex: each shard owns its own map, mutex, and condition
// variable, and the wait/timeout logic runs entirely within one shard
// (a lock names exactly one key, so no operation ever holds two shard
// mutexes). Only ReleaseAll visits every shard, once per commit/abort.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"
#include "common/status.h"
#include "log/log_record.h"

namespace spf {

enum class LockMode : uint8_t { kShared, kExclusive };

/// Counters aggregated over all shards.
struct LockManagerStats {
  uint64_t acquisitions = 0;  ///< granted lock requests
  uint64_t waits = 0;         ///< requests that blocked at least once
  uint64_t timeouts = 0;      ///< waits resolved as deadlock
  /// Keys with a holder or waiter right now; zero after all transactions
  /// retire (the stress tests' lock-leak probe).
  uint64_t keys_tracked = 0;
};

class LockManager {
 public:
  static constexpr size_t kDefaultShards = 16;

  explicit LockManager(std::chrono::milliseconds wait_timeout =
                           std::chrono::milliseconds(200),
                       size_t shards = kDefaultShards)
      : timeout_(wait_timeout), shards_(shards == 0 ? 1 : shards) {}

  SPF_DISALLOW_COPY(LockManager);

  /// Acquires `mode` on `key` for `txn`. Re-entrant; upgrades a shared
  /// lock to exclusive when `txn` is the only holder. Returns Deadlock on
  /// timeout.
  Status Lock(TxnId txn, const std::string& key, LockMode mode);

  /// Releases one key (no-op if not held).
  void Unlock(TxnId txn, const std::string& key);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds a lock on `key` in at least `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  /// True if ANY transaction holds a lock on `key`. Used by ghost
  /// reclamation: a locked ghost may still be needed by its deleter's
  /// rollback and must not be removed.
  bool IsLocked(const std::string& key) const;

  uint64_t timeouts() const;

  LockManagerStats stats() const;

 private:
  struct LockState {
    // txn -> mode currently granted.
    std::map<TxnId, LockMode> holders;
    uint64_t waiters = 0;
  };

  struct Shard {
    mutable OrderedMutex mu{LockRank::kLockShard};
    CondVar cv;
    std::map<std::string, LockState> locks SPF_GUARDED_BY(mu);
    uint64_t acquisitions SPF_GUARDED_BY(mu) = 0;
    uint64_t waits SPF_GUARDED_BY(mu) = 0;
    uint64_t timeouts SPF_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  static bool Compatible(const LockState& s, TxnId txn, LockMode mode);

  const std::chrono::milliseconds timeout_;
  mutable std::vector<Shard> shards_;
};

}  // namespace spf
