// Key-value lock manager for user transactions.
//
// Exclusive and shared locks on B-tree keys, FIFO-fair waiting with a
// timeout: a transaction that waits longer than the configured bound is
// treated as deadlocked and receives Status::Deadlock, which the caller
// turns into a transaction failure (rollback) — the cheapest of the
// paper's failure classes and the baseline for experiment E1.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "log/log_record.h"

namespace spf {

enum class LockMode : uint8_t { kShared, kExclusive };

class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds wait_timeout =
                           std::chrono::milliseconds(200))
      : timeout_(wait_timeout) {}

  /// Acquires `mode` on `key` for `txn`. Re-entrant; upgrades a shared
  /// lock to exclusive when `txn` is the only holder. Returns Deadlock on
  /// timeout.
  Status Lock(TxnId txn, const std::string& key, LockMode mode);

  /// Releases one key (no-op if not held).
  void Unlock(TxnId txn, const std::string& key);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds a lock on `key` in at least `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  /// True if ANY transaction holds a lock on `key`. Used by ghost
  /// reclamation: a locked ghost may still be needed by its deleter's
  /// rollback and must not be removed.
  bool IsLocked(const std::string& key) const;

  uint64_t timeouts() const {
    std::lock_guard<std::mutex> g(mu_);
    return timeouts_;
  }

 private:
  struct LockState {
    // txn -> mode currently granted.
    std::map<TxnId, LockMode> holders;
    uint64_t waiters = 0;
  };

  bool Compatible(const LockState& s, TxnId txn, LockMode mode) const;

  const std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, LockState> locks_;
  uint64_t timeouts_ = 0;
};

}  // namespace spf
