// Quickstart: create a database, write and read data, inject a
// single-page failure, and watch it heal on the next read — the paper's
// headline behavior in ~80 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "db/database.h"

using namespace spf;

int main() {
  // 1. Create a 32 MiB database on simulated SSD storage.
  DatabaseOptions options;
  options.num_pages = 4096;
  auto db_or = Database::Create(options);
  if (!db_or.ok()) {
    fprintf(stderr, "create failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  // 2. Write some data in a transaction.
  Txn txn = db->BeginTxn();
  for (int i = 0; i < 1000; ++i) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "user:%05d", i);
    snprintf(value, sizeof(value), "balance=%d", i * 10);
    SPF_CHECK_OK(txn.Insert(key, value));
  }
  SPF_CHECK_OK(txn.Commit());
  printf("inserted 1000 records\n");

  // 3. Read one back.
  auto v = db->Get("user:00500");
  printf("user:00500 -> %s\n", v->c_str());

  // 4. Flush to "disk", then corrupt the page holding that record —
  //    silently, the way a failing device would (section 1's anecdote).
  SPF_CHECK_OK(db->FlushAll());
  PageId victim = *db->LeafPageOf("user:00500");
  db->pool()->DiscardAll();  // make sure the next read hits the device
  db->data_device()->InjectSilentCorruption(victim);
  printf("corrupted page %llu on the device\n",
         static_cast<unsigned long long>(victim));

  // 5. Read again: the checksum catches the corruption (Figure 8), the
  //    page recovery index locates a backup, the per-page log chain
  //    replays the updates (Figure 10), and the read SUCCEEDS. No
  //    transaction aborted; the read was merely delayed.
  v = db->Get("user:00500");
  printf("after failure, user:00500 -> %s\n", v->c_str());

  auto stats = db->single_page_recovery()->stats();
  printf(
      "single-page recovery: %llu repair(s), chain of %llu record(s), "
      "backup source=%d, %.1f ms simulated I/O\n",
      static_cast<unsigned long long>(stats.repairs_succeeded),
      static_cast<unsigned long long>(stats.last_chain_length),
      static_cast<int>(stats.last_backup_kind),
      static_cast<double>(stats.last_sim_ns) / 1e6);

  // 6. The database is intact — prove it with the offline verifier.
  SPF_CHECK_OK(db->CheckOffline(nullptr));
  printf("offline verification: OK\n");
  return 0;
}
