// Scrubber daemon: the self-healing pipeline end to end. A background
// scrubber detects latent faults on an aging device and reports them into
// the failure funnel (RecoveryCoordinator), whose worker drains them
// through the recovery ladder — nothing in this program ever calls
// RecoverPages, Scrub, or RepairPages.
//
// Bairavasundaram et al. (the paper's [2]) found latent sector errors in
// thousands of drives, a majority surfacing during reads and "disk
// scrubbing". Cold pages may sit corrupted for months before an
// application read would notice. Here the Scrubber runs as a real
// background thread, paced on the WALL clock (the simulated clock never
// advances under Instant-style profiles, so wall cadence is what a daemon
// wants); each round, random pages develop latent faults — a mix of
// silent corruption and transient hard read errors. The sweeps detect
// them, the funnel coalesces and heals them, and foreground traffic keeps
// flowing the whole time. The log archiver runs as a second background
// daemon, draining the durable log into sorted runs while the scrubber
// sweeps — its counters surface through the versioned StatsSnapshot (v2)
// alongside the scrubber's.

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "db/database.h"

using namespace spf;

namespace {
constexpr int kRecords = 20000;
constexpr int kRounds = 6;

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

void WaitForSweeps(Database* db, uint64_t target) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (db->scrubber()->totals().sweeps_completed < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}
}  // namespace

int main() {
  DatabaseOptions options;
  options.num_pages = 4096;
  options.scrub_pages_per_tick = 512;  // incremental sweep quantum
  // Wall-clock cadence: tick every 2 ms of host time. (The simulated
  // cadence would degrade to continuous ticking here, because scrub reads
  // are the only thing advancing the simulated clock.)
  options.scrub_wall_interval = std::chrono::milliseconds(2);
  options.recovery_workers = 4;
  options.batch_repair = true;
  // auto_escalate defaults to true: detection sites feed the funnel.
  auto db = std::move(Database::Create(options)).value();

  Txn t = db->BeginTxn();
  for (int i = 0; i < kRecords; ++i) {
    SPF_CHECK_OK(t.Insert(Key(i), "payload-" + std::to_string(i)));
  }
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->FlushAll());
  printf("database loaded: %d records; full backup taken\n", kRecords);

  db->scrubber()->Start();
  printf(
      "background scrubber started (%llu pages per tick, one tick per "
      "%lld ms wall time)\n\n",
      static_cast<unsigned long long>(options.scrub_pages_per_tick),
      static_cast<long long>(options.scrub_wall_interval.count()));
  db->archiver()->Start();
  printf("background log archiver started (sorted runs of ~%llu bytes)\n\n",
         static_cast<unsigned long long>(options.archive_run_bytes));

  Random rng(777);
  uint64_t total_injected = 0;

  for (int round = 1; round <= kRounds; ++round) {
    // The device ages: latent faults appear on random allocated pages —
    // a mix of silent corruption and hard read errors. The pages are
    // dropped from the pool so nothing shields the fault.
    int injected = 0;
    for (int k = 0; k < 3; ++k) {
      int key = static_cast<int>(rng.Uniform(kRecords));
      auto leaf = db->LeafPageOf(Key(key));
      if (!leaf.ok()) continue;
      db->pool()->DiscardPage(*leaf);
      if (rng.Bernoulli(0.5)) {
        db->data_device()->InjectSilentCorruption(*leaf, rng.Next());
      } else {
        db->data_device()->InjectReadError(*leaf, /*permanent=*/false);
      }
      injected++;
    }
    total_injected += injected;

    // Wait for TWO more sweep completions: the pass in flight at injection
    // time may already be past the faulted pages, but the next full pass
    // starts after the faults exist, so it must cover them all. (+2, not
    // +1, is what guarantees the background daemon — not some foreground
    // read — is the thing that detects.) Then let the funnel finish
    // draining what the sweeps reported.
    WaitForSweeps(db.get(), db->scrubber()->totals().sweeps_completed + 2);
    db->funnel()->WaitIdle();

    // Foreground traffic keeps flowing against the healed database.
    for (int i = 0; i < 200; ++i) {
      int key = static_cast<int>(rng.Uniform(kRecords));
      SPF_CHECK_OK(db->Get(Key(key)).status());
    }
    ScrubberTotals scrub = db->scrubber()->totals();
    FunnelTotals funnel = db->funnel()->totals();
    printf(
        "round %d: injected %d fault(s); daemon so far: %llu sweeps, "
        "%llu scanned, %llu detected -> funnel: %llu healed, %llu failed\n",
        round, injected,
        static_cast<unsigned long long>(scrub.sweeps_completed),
        static_cast<unsigned long long>(scrub.pages_scanned),
        static_cast<unsigned long long>(scrub.failures_detected),
        static_cast<unsigned long long>(
            funnel.repaired_spr + funnel.repaired_partial +
            funnel.repaired_full + funnel.skipped_dirty),
        static_cast<unsigned long long>(funnel.failed));
  }

  db->scrubber()->Stop();
  db->archiver()->Stop();
  db->funnel()->WaitIdle();
  StatsSnapshot stats = db->Stats();
  printf(
      "\nlifetime: injected=%llu detected=%llu reported=%llu\n",
      static_cast<unsigned long long>(total_injected),
      static_cast<unsigned long long>(stats.scrubber.failures_detected),
      static_cast<unsigned long long>(stats.scrubber.failures_reported));
  printf(
      "funnel: %llu enqueued, %llu coalesced, %llu batches -> %llu healed "
      "in place, %llu via partial restore, %llu failed\n",
      static_cast<unsigned long long>(stats.funnel.enqueued),
      static_cast<unsigned long long>(stats.funnel.coalesced),
      static_cast<unsigned long long>(stats.funnel.batches),
      static_cast<unsigned long long>(stats.funnel.repaired_spr),
      static_cast<unsigned long long>(stats.funnel.repaired_partial),
      static_cast<unsigned long long>(stats.funnel.failed));
  printf(
      "scheduler: %llu batches, %llu pages repaired, %llu shared segment "
      "fetches, %llu foreground inline repairs\n",
      static_cast<unsigned long long>(stats.scheduler.batches),
      static_cast<unsigned long long>(stats.scheduler.pages_repaired),
      static_cast<unsigned long long>(stats.scheduler.segment_fetches),
      static_cast<unsigned long long>(stats.scheduler.single_repairs));
  printf(
      "archiver: %llu runs cut (%llu live after %llu merges), %llu records "
      "/ %llu bytes archived up to LSN %llu; %llu log bytes recyclable "
      "(archived AND checkpointed)\n",
      static_cast<unsigned long long>(stats.archive.runs_written),
      static_cast<unsigned long long>(stats.archive.active_runs),
      static_cast<unsigned long long>(stats.archive.merges),
      static_cast<unsigned long long>(stats.archive.records_archived),
      static_cast<unsigned long long>(stats.archive.archived_bytes),
      static_cast<unsigned long long>(stats.archive.archived_upto),
      static_cast<unsigned long long>(stats.archive.truncated_log_bytes));

  // Final health check: everything readable and structurally sound.
  uint64_t count = 0;
  SPF_CHECK_OK(db->Scan("", "", [&count](std::string_view, std::string_view) {
    count++;
    return true;
  }));
  SPF_CHECK_OK(db->CheckOffline(nullptr));
  printf("final state: %llu records readable, offline verification OK\n",
         static_cast<unsigned long long>(count));
  FunnelTotals funnel = db->funnel()->totals();
  return count == kRecords && funnel.failed == 0 ? 0 : 1;
}
