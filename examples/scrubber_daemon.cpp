// Scrubber daemon: periodic whole-database scrubbing with automatic
// repair — the proactive counterpart to detection-on-read.
//
// Bairavasundaram et al. (the paper's [2]) found latent sector errors in
// thousands of drives, a majority surfacing during reads and "disk
// scrubbing". Cold pages may sit corrupted for months before an
// application read would notice. This example simulates aging rounds:
// each round, a few random pages develop latent faults; the scrubber
// sweeps the database through the verify-and-repair read path (Figure 8),
// heals everything it finds, and reports drive-style statistics.

#include <cstdio>

#include "common/random.h"
#include "db/database.h"

using namespace spf;

namespace {
constexpr int kRecords = 20000;
constexpr int kRounds = 6;

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}
}  // namespace

int main() {
  DatabaseOptions options;
  options.num_pages = 4096;
  auto db = std::move(Database::Create(options)).value();

  Transaction* t = db->Begin();
  for (int i = 0; i < kRecords; ++i) {
    SPF_CHECK_OK(db->Insert(t, Key(i), "payload-" + std::to_string(i)));
  }
  SPF_CHECK_OK(db->Commit(t));
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->FlushAll());
  printf("database loaded: %d records; full backup taken\n\n", kRecords);

  Random rng(777);
  uint64_t total_injected = 0, total_found = 0, total_repaired = 0;

  for (int round = 1; round <= kRounds; ++round) {
    // The device ages: latent faults appear on random allocated pages —
    // a mix of silent corruption and hard read errors.
    db->pool()->DiscardAll();
    int injected = 0;
    for (int k = 0; k < 3; ++k) {
      int key = static_cast<int>(rng.Uniform(kRecords));
      auto leaf = db->LeafPageOf(Key(key));
      if (!leaf.ok()) continue;
      db->pool()->DiscardPage(*leaf);
      if (rng.Bernoulli(0.5)) {
        db->data_device()->InjectSilentCorruption(*leaf, rng.Next());
      } else {
        db->data_device()->InjectReadError(*leaf, /*permanent=*/false);
      }
      injected++;
    }
    total_injected += injected;

    // The daemon's periodic sweep.
    db->pool()->DiscardAll();
    auto scrub = db->Scrub();
    SPF_CHECK(scrub.ok()) << scrub.status().ToString();
    total_found += scrub->failures_detected;
    total_repaired += scrub->pages_repaired;
    printf(
        "round %d: injected %d fault(s); scrub scanned %llu pages, "
        "detected %llu, repaired %llu\n",
        round, injected,
        static_cast<unsigned long long>(scrub->pages_scanned),
        static_cast<unsigned long long>(scrub->failures_detected),
        static_cast<unsigned long long>(scrub->pages_repaired));
  }

  printf("\nlifetime: injected=%llu detected=%llu repaired=%llu\n",
         static_cast<unsigned long long>(total_injected),
         static_cast<unsigned long long>(total_found),
         static_cast<unsigned long long>(total_repaired));

  // Final health check: everything readable and structurally sound.
  uint64_t count = 0;
  SPF_CHECK_OK(db->Scan("", "", [&count](std::string_view, std::string_view) {
    count++;
    return true;
  }));
  SPF_CHECK_OK(db->CheckOffline(nullptr));
  printf("final state: %llu records readable, offline verification OK\n",
         static_cast<unsigned long long>(count));
  return count == kRecords && total_repaired >= total_found ? 0 : 1;
}
