// Scrubber daemon: the first-class background scrubber healing latent
// faults while foreground traffic keeps running.
//
// Bairavasundaram et al. (the paper's [2]) found latent sector errors in
// thousands of drives, a majority surfacing during reads and "disk
// scrubbing". Cold pages may sit corrupted for months before an
// application read would notice. This example starts the Scrubber as a
// real background thread (budgeted pages per tick, cadence measured in
// simulated time) and ages the device while a foreground workload runs:
// each round, random pages develop latent faults — a mix of silent
// corruption and transient hard read errors. The background sweeps detect
// them and hand each tick's haul to the RecoveryScheduler, which repairs
// the batch coordinately (grouped backup reads + shared log segments).

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "db/database.h"

using namespace spf;

namespace {
constexpr int kRecords = 20000;
constexpr int kRounds = 6;

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

void WaitForSweeps(Database* db, uint64_t target) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (db->scrubber()->totals().sweeps_completed < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}
}  // namespace

int main() {
  DatabaseOptions options;
  options.num_pages = 4096;
  options.scrub_pages_per_tick = 512;  // incremental sweep quantum
  options.scrub_interval = std::chrono::milliseconds(0);  // continuous
  options.recovery_workers = 4;
  options.batch_repair = true;
  auto db = std::move(Database::Create(options)).value();

  Transaction* t = db->Begin();
  for (int i = 0; i < kRecords; ++i) {
    SPF_CHECK_OK(db->Insert(t, Key(i), "payload-" + std::to_string(i)));
  }
  SPF_CHECK_OK(db->Commit(t));
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->FlushAll());
  printf("database loaded: %d records; full backup taken\n", kRecords);

  db->scrubber()->Start();
  printf("background scrubber started (%llu pages/tick)\n\n",
         static_cast<unsigned long long>(options.scrub_pages_per_tick));

  Random rng(777);
  uint64_t total_injected = 0;

  for (int round = 1; round <= kRounds; ++round) {
    // The device ages: latent faults appear on random allocated pages —
    // a mix of silent corruption and hard read errors. The pages are
    // dropped from the pool so nothing shields the fault.
    int injected = 0;
    for (int k = 0; k < 3; ++k) {
      int key = static_cast<int>(rng.Uniform(kRecords));
      auto leaf = db->LeafPageOf(Key(key));
      if (!leaf.ok()) continue;
      db->pool()->DiscardPage(*leaf);
      if (rng.Bernoulli(0.5)) {
        db->data_device()->InjectSilentCorruption(*leaf, rng.Next());
      } else {
        db->data_device()->InjectReadError(*leaf, /*permanent=*/false);
      }
      injected++;
    }
    total_injected += injected;

    // Wait for TWO more sweep completions: the pass in flight at injection
    // time may already be past the faulted pages, but the next full pass
    // starts after the faults exist, so it must cover them all. (+2, not
    // +1, is what guarantees the background daemon — not some foreground
    // read — is the thing that heals.)
    WaitForSweeps(db.get(), db->scrubber()->totals().sweeps_completed + 2);

    // Foreground traffic keeps flowing against the healed database.
    for (int i = 0; i < 200; ++i) {
      int key = static_cast<int>(rng.Uniform(kRecords));
      SPF_CHECK_OK(db->Get(nullptr, Key(key)).status());
    }
    ScrubberTotals totals = db->scrubber()->totals();
    printf(
        "round %d: injected %d fault(s); daemon so far: %llu sweeps, "
        "%llu pages scanned, %llu detected, %llu repaired\n",
        round, injected,
        static_cast<unsigned long long>(totals.sweeps_completed),
        static_cast<unsigned long long>(totals.pages_scanned),
        static_cast<unsigned long long>(totals.failures_detected),
        static_cast<unsigned long long>(totals.pages_repaired));
  }

  db->scrubber()->Stop();
  ScrubberTotals totals = db->scrubber()->totals();
  RecoverySchedulerStats sched = db->recovery_scheduler()->stats();
  printf(
      "\nlifetime: injected=%llu detected=%llu repaired=%llu "
      "escalations=%llu\n",
      static_cast<unsigned long long>(total_injected),
      static_cast<unsigned long long>(totals.failures_detected),
      static_cast<unsigned long long>(totals.pages_repaired),
      static_cast<unsigned long long>(totals.escalations));
  printf(
      "scheduler: %llu batches, %llu pages repaired, %llu shared segment "
      "fetches, %llu foreground repairs\n",
      static_cast<unsigned long long>(sched.batches),
      static_cast<unsigned long long>(sched.pages_repaired),
      static_cast<unsigned long long>(sched.segment_fetches),
      static_cast<unsigned long long>(sched.single_repairs));

  // Final health check: everything readable and structurally sound.
  uint64_t count = 0;
  SPF_CHECK_OK(db->Scan("", "", [&count](std::string_view, std::string_view) {
    count++;
    return true;
  }));
  SPF_CHECK_OK(db->CheckOffline(nullptr));
  printf("final state: %llu records readable, offline verification OK\n",
         static_cast<unsigned long long>(count));
  return count == kRecords && totals.pages_repaired >= totals.failures_detected
             ? 0
             : 1;
}
