// OLTP survivor: a bank-transfer workload that keeps committing while
// pages fail underneath it.
//
// This demonstrates the paper's central operational claim (section 5.2.7):
// "If a single-page failure occurs, it can be detected and repaired so
// efficiently that it is not required to terminate the affected
// transaction. Instead, a short delay ... suffices." The workload runs
// transfer transactions; a fault injector corrupts random pages between
// batches; not one transaction aborts for a storage reason, and the final
// balance invariant holds.

#include <cstdio>

#include "common/random.h"
#include "db/database.h"

using namespace spf;

namespace {

constexpr int kAccounts = 5000;
constexpr int kInitialBalance = 1000;
constexpr int kBatches = 20;
constexpr int kTransfersPerBatch = 50;

std::string AccountKey(int i) {
  char buf[24];
  snprintf(buf, sizeof(buf), "acct:%06d", i);
  return buf;
}

int64_t ReadBalance(Txn& txn, int acct) {
  auto v = txn.Get(AccountKey(acct));
  SPF_CHECK(v.ok()) << v.status().ToString();
  return std::stoll(*v);
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.num_pages = 4096;
  options.backup_policy.updates_threshold = 100;  // paper's example policy
  auto db = std::move(Database::Create(options)).value();

  // Open accounts.
  {
    Txn txn = db->BeginTxn();
    for (int i = 0; i < kAccounts; ++i) {
      SPF_CHECK_OK(txn.Insert(AccountKey(i),
                              std::to_string(kInitialBalance)));
    }
    SPF_CHECK_OK(txn.Commit());
  }
  SPF_CHECK_OK(db->TakeFullBackup().status());
  printf("opened %d accounts, took a full backup\n", kAccounts);

  Random rng(2026);
  uint64_t committed = 0, storage_aborts = 0, pages_corrupted = 0;

  for (int batch = 0; batch < kBatches; ++batch) {
    // Adversary: corrupt two random data pages on the device.
    SPF_CHECK_OK(db->FlushAll());
    for (int k = 0; k < 2; ++k) {
      int acct = static_cast<int>(rng.Uniform(kAccounts));
      auto leaf = db->LeafPageOf(AccountKey(acct));
      if (leaf.ok()) {
        db->pool()->DiscardPage(*leaf);
        db->data_device()->InjectSilentCorruption(*leaf, rng.Next());
        pages_corrupted++;
      }
    }

    // Business as usual: money moves between random account pairs. The
    // v2 error taxonomy drives the retry loop: transient conflicts
    // (lock timeouts) re-run the transfer, storage failures must never
    // surface at all — the funnel repairs them under the read.
    for (int i = 0; i < kTransfersPerBatch; ++i) {
      int from = static_cast<int>(rng.Uniform(kAccounts));
      int to = static_cast<int>(rng.Uniform(kAccounts));
      if (from == to) continue;
      for (int attempt = 0; attempt < 3; ++attempt) {
        Txn txn = db->BeginTxn();
        int64_t from_balance = ReadBalance(txn, from);
        int64_t to_balance = ReadBalance(txn, to);
        int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(100));
        // Both sides of the transfer move atomically, in one batch.
        WriteBatch transfer;
        transfer.Update(AccountKey(from), std::to_string(from_balance - amount));
        transfer.Update(AccountKey(to), std::to_string(to_balance + amount));
        TxnError err = txn.Apply(std::move(transfer));
        if (err.ok()) err = txn.Commit();
        if (err.ok()) {
          committed++;
          break;
        }
        if (err.kind() == TxnError::Kind::kStorage ||
            err.kind() == TxnError::Kind::kFatal) {
          storage_aborts++;  // the paper's claim is that this stays 0
        }
        if (!err.retryable()) break;  // dropping txn auto-aborts
      }
    }
  }

  auto spr = db->single_page_recovery()->stats();
  printf("\nworkload done: %llu transfers committed\n",
         static_cast<unsigned long long>(committed));
  printf("pages corrupted underneath the workload: %llu\n",
         static_cast<unsigned long long>(pages_corrupted));
  printf("single-page repairs performed inline:    %llu\n",
         static_cast<unsigned long long>(spr.repairs_succeeded));
  printf("transactions aborted by storage faults:  %llu\n",
         static_cast<unsigned long long>(storage_aborts));

  // Money conservation: total balance unchanged.
  int64_t total = 0;
  SPF_CHECK_OK(db->Scan("acct:", "acct:zzzzzzz",
                        [&](std::string_view, std::string_view v) {
                          total += std::stoll(std::string(v));
                          return true;
                        }));
  int64_t expected = static_cast<int64_t>(kAccounts) * kInitialBalance;
  printf("balance invariant: total=%lld expected=%lld -> %s\n",
         static_cast<long long>(total), static_cast<long long>(expected),
         total == expected ? "HOLDS" : "VIOLATED");
  SPF_CHECK_OK(db->CheckOffline(nullptr));
  printf("offline verification: OK\n");
  return total == expected && storage_aborts == 0 ? 0 : 1;
}
