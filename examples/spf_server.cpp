// spf_server: the network serving layer end to end — start a TCP server
// over a database, speak the binary wire protocol to it, and watch a
// single-page failure heal underneath a live client connection.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/spf_server              (self-demo, exits)
//               ./build/examples/spf_server --listen 7878 (serve until EOF)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "db/database.h"
#include "server/client.h"
#include "server/network_server.h"

using namespace spf;

int main(int argc, char** argv) {
  DatabaseOptions options;
  options.num_pages = 4096;
  auto db_or = Database::Create(options);
  if (!db_or.ok()) {
    fprintf(stderr, "create failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  ServerOptions sopts;
  sopts.workers = 4;
  bool listen_mode = false;
  if (argc >= 3 && std::strcmp(argv[1], "--listen") == 0) {
    listen_mode = true;
    sopts.port = static_cast<uint16_t>(std::atoi(argv[2]));
  }
  NetworkServer server(db.get(), sopts);
  SPF_CHECK_OK(server.Start());
  printf("serving on 127.0.0.1:%u with %u workers\n", server.port(),
         sopts.workers);

  if (listen_mode) {
    // Serve until stdin closes (Ctrl-D). Talk to it with another
    // spf_server process or any wire-protocol client.
    printf("press Ctrl-D to stop\n");
    while (getchar() != EOF) {
    }
    server.Stop();
    return 0;
  }

  // Self-demo: a client connection doing real work over the wire.
  Client client;
  SPF_CHECK_OK(client.Connect("127.0.0.1", server.port()));

  // 1. One frame = one transaction: three writes commit atomically.
  wire::TxnRequest deposit;
  deposit.Put("account:alice", "balance=900");
  deposit.Put("account:bob", "balance=1100");
  deposit.Put("audit:transfer:1", "alice->bob:100");
  wire::TxnReply reply;
  SPF_CHECK_OK(client.ExecuteWithRetry(deposit, &reply));
  printf("transfer frame: %s\n", reply.ok() ? "committed" : "failed");

  // 2. Point read through the wire.
  auto v = client.Get("account:bob");
  printf("account:bob -> %s\n", v->c_str());

  // 3. Silently corrupt the page under bob's record, the way a failing
  //    device would — then read again through the SAME connection. The
  //    server-side read trips the checksum, single-page recovery replays
  //    the per-page log chain, and the client just sees its answer.
  SPF_CHECK_OK(db->FlushAll());
  PageId victim = *db->LeafPageOf("account:bob");
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(victim);
  v = client.Get("account:bob");
  printf("after page failure, account:bob -> %s\n", v->c_str());

  // 4. INFO: the engine's stats snapshot plus the server's own counters.
  wire::InfoReply info;
  SPF_CHECK_OK(client.Info(&info));
  printf("INFO (stats v%u): frames_decoded=%llu txns_committed=%llu "
         "repairs=%llu\n",
         info.stats_version,
         static_cast<unsigned long long>(info.Counter("server.frames_decoded")),
         static_cast<unsigned long long>(info.Counter("server.txns_committed")),
         static_cast<unsigned long long>(info.Counter("spr.repairs_succeeded")));

  // 5. A scan, wire-side.
  wire::TxnRequest scan;
  scan.Scan("account:", "account:~", 10);
  SPF_CHECK_OK(client.ExecuteWithRetry(scan, &reply));
  printf("scan delivered %zu pairs\n", reply.results[0].pairs.size());

  client.Close();
  server.Stop();
  printf("server stopped cleanly\n");
  return 0;
}
