// The "nightmare scenario": a device silently returns plausible but stale
// page contents — the class of failure behind the real-world incident the
// paper's introduction recounts (a disk returning bad sectors without
// failing reads, so the RAID controller propagated garbage into parity
// and backups for weeks).
//
// A stale page carries a VALID checksum, so in-page tests pass. This
// example shows the difference between:
//   (a) a traditional system (no cross-page checks): the stale page is
//       accepted, and the application silently reads outdated data;
//   (b) this system: the PageLSN-vs-PRI cross-check (section 5.2.2)
//       catches the staleness on the very first read, the read path
//       reports the page into the failure funnel (RecoveryCoordinator),
//       and the funnel's worker rebuilds the current contents through the
//       recovery ladder before the application sees anything — the
//       reading thread merely waits; nothing here calls RecoverPages.
//
// The same funnel also dedups concurrent victims: N readers hitting the
// stale page at once share ONE repair (shown in the stats below).

#include <cstdio>

#include <thread>
#include <vector>

#include "db/database.h"

using namespace spf;

namespace {

constexpr int kReaders = 4;  ///< concurrent readers per scenario

struct Outcome {
  std::string value_seen;
  bool detected;
  bool repaired;
  uint64_t readers_served = 0;   ///< concurrent readers that saw current data
  uint64_t funnel_repairs = 0;   ///< repairs the funnel actually ran
  uint64_t funnel_coalesced = 0; ///< reports merged onto an in-flight repair
};

Outcome RunScenario(bool with_cross_check_and_repair) {
  DatabaseOptions options;
  options.num_pages = 4096;
  options.backup_policy.updates_threshold = 0;
  if (!with_cross_check_and_repair) {
    // A traditional system: checksums only; no PRI cross-check would be
    // possible anyway, but keep checksums (the stale page passes them).
    options.tracking = WriteTrackingMode::kCompletedWrites;
    options.enable_single_page_repair = false;
  }
  auto db = std::move(Database::Create(options)).value();

  Txn t = db->BeginTxn();
  SPF_CHECK_OK(t.Insert("sensor:42", "reading=OLD"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());

  // The device quietly remembers the old image...
  PageId victim = *db->LeafPageOf("sensor:42");
  db->data_device()->CapturePageVersion(victim);

  // ...the application updates the value and the page reaches the disk...
  t = db->BeginTxn();
  SPF_CHECK_OK(t.Update("sensor:42", "reading=CURRENT"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());

  // ...and then the device starts returning the STALE image: valid
  // checksum, plausible contents, wrong point in time.
  db->pool()->DiscardAll();
  SPF_CHECK(db->data_device()->InjectStaleVersion(victim));

  // A burst of concurrent readers hits the stale page at once — the
  // worst case of the nightmare (everyone consuming outdated data), and
  // the funnel's dedup case (everyone sharing one repair).
  std::vector<std::string> seen(kReaders);
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      auto v = db->Get("sensor:42");
      seen[i] = v.ok() ? *v : "<read failed: " + v.status().ToString() + ">";
    });
  }
  for (auto& t : readers) t.join();

  Outcome outcome;
  outcome.value_seen = seen[0];
  for (const std::string& s : seen) {
    if (s == "reading=CURRENT") outcome.readers_served++;
  }
  outcome.detected = db->cross_check() != nullptr &&
                     db->cross_check()->mismatches() > 0;
  outcome.repaired = db->single_page_recovery()->stats().repairs_succeeded > 0;
  if (db->funnel() != nullptr) {
    db->funnel()->WaitIdle();
    FunnelTotals totals = db->funnel()->totals();
    outcome.funnel_repairs =
        totals.repaired_spr + totals.repaired_partial + totals.repaired_full;
    outcome.funnel_coalesced = totals.coalesced;
  }
  return outcome;
}

}  // namespace

int main() {
  printf("The stale-page nightmare (paper section 1 / section 5.2.2)\n\n");

  Outcome traditional = RunScenario(false);
  printf("traditional system (checksums only):\n");
  printf("  value read:      %s\n", traditional.value_seen.c_str());
  printf("  stale detected:  %s\n", traditional.detected ? "yes" : "NO");
  printf("  => the application silently consumed OUTDATED data; backups\n");
  printf("     and downstream parity would now inherit it.\n\n");

  Outcome protected_sys = RunScenario(true);
  printf("this system (PageLSN vs. page recovery index cross-check):\n");
  printf("  value read:        %s\n", protected_sys.value_seen.c_str());
  printf("  stale detected:    %s\n", protected_sys.detected ? "yes" : "no");
  printf("  self-healed:       %s (via the failure funnel)\n",
         protected_sys.repaired ? "yes" : "no");
  printf("  concurrent reads:  %llu/%d served current data, %llu repair(s) "
         "run, %llu report(s) coalesced\n",
         static_cast<unsigned long long>(protected_sys.readers_served),
         kReaders,
         static_cast<unsigned long long>(protected_sys.funnel_repairs),
         static_cast<unsigned long long>(protected_sys.funnel_coalesced));
  printf("  => caught on first occurrence and repaired before use -\n");
  printf("     \"the nightmare ... would have been impossible in a system\n");
  printf("     testing all invariants\" (section 4.2).\n");

  bool ok = traditional.value_seen == "reading=OLD" &&  // the silent failure
            protected_sys.readers_served == kReaders &&
            protected_sys.detected && protected_sys.repaired &&
            protected_sys.funnel_repairs >= 1;
  return ok ? 0 : 1;
}
