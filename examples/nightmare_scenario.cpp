// The "nightmare scenario": a device silently returns plausible but stale
// page contents — the class of failure behind the real-world incident the
// paper's introduction recounts (a disk returning bad sectors without
// failing reads, so the RAID controller propagated garbage into parity
// and backups for weeks).
//
// A stale page carries a VALID checksum, so in-page tests pass. This
// example shows the difference between:
//   (a) a traditional system (no cross-page checks): the stale page is
//       accepted, and the application silently reads outdated data;
//   (b) this system: the PageLSN-vs-PRI cross-check (section 5.2.2)
//       catches the staleness on the very first read, and single-page
//       recovery rebuilds the current contents before the application
//       sees anything.

#include <cstdio>

#include "db/database.h"

using namespace spf;

namespace {

struct Outcome {
  std::string value_seen;
  bool detected;
  bool repaired;
};

Outcome RunScenario(bool with_cross_check_and_repair) {
  DatabaseOptions options;
  options.num_pages = 4096;
  options.backup_policy.updates_threshold = 0;
  if (!with_cross_check_and_repair) {
    // A traditional system: checksums only; no PRI cross-check would be
    // possible anyway, but keep checksums (the stale page passes them).
    options.tracking = WriteTrackingMode::kCompletedWrites;
    options.enable_single_page_repair = false;
  }
  auto db = std::move(Database::Create(options)).value();

  Transaction* t = db->Begin();
  SPF_CHECK_OK(db->Insert(t, "sensor:42", "reading=OLD"));
  SPF_CHECK_OK(db->Commit(t));
  SPF_CHECK_OK(db->FlushAll());

  // The device quietly remembers the old image...
  PageId victim = *db->LeafPageOf("sensor:42");
  db->data_device()->CapturePageVersion(victim);

  // ...the application updates the value and the page reaches the disk...
  t = db->Begin();
  SPF_CHECK_OK(db->Update(t, "sensor:42", "reading=CURRENT"));
  SPF_CHECK_OK(db->Commit(t));
  SPF_CHECK_OK(db->FlushAll());

  // ...and then the device starts returning the STALE image: valid
  // checksum, plausible contents, wrong point in time.
  db->pool()->DiscardAll();
  SPF_CHECK(db->data_device()->InjectStaleVersion(victim));

  Outcome outcome;
  auto v = db->Get(nullptr, "sensor:42");
  if (v.ok()) {
    outcome.value_seen = *v;
  } else {
    outcome.value_seen = "<read failed: " + v.status().ToString() + ">";
  }
  outcome.detected = db->cross_check() != nullptr &&
                     db->cross_check()->mismatches() > 0;
  outcome.repaired = db->single_page_recovery()->stats().repairs_succeeded > 0;
  return outcome;
}

}  // namespace

int main() {
  printf("The stale-page nightmare (paper section 1 / section 5.2.2)\n\n");

  Outcome traditional = RunScenario(false);
  printf("traditional system (checksums only):\n");
  printf("  value read:      %s\n", traditional.value_seen.c_str());
  printf("  stale detected:  %s\n", traditional.detected ? "yes" : "NO");
  printf("  => the application silently consumed OUTDATED data; backups\n");
  printf("     and downstream parity would now inherit it.\n\n");

  Outcome protected_sys = RunScenario(true);
  printf("this system (PageLSN vs. page recovery index cross-check):\n");
  printf("  value read:      %s\n", protected_sys.value_seen.c_str());
  printf("  stale detected:  %s\n", protected_sys.detected ? "yes" : "no");
  printf("  repaired inline: %s\n", protected_sys.repaired ? "yes" : "no");
  printf("  => caught on first occurrence and repaired before use -\n");
  printf("     \"the nightmare ... would have been impossible in a system\n");
  printf("     testing all invariants\" (section 4.2).\n");

  bool ok = traditional.value_seen == "reading=OLD" &&  // the silent failure
            protected_sys.value_seen == "reading=CURRENT" &&
            protected_sys.detected && protected_sys.repaired;
  return ok ? 0 : 1;
}
